module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Ip = Uln_addr.Ip

let proto = 6
let header_size = 20
let max_options = 40

type flags = { fin : bool; syn : bool; rst : bool; psh : bool; ack : bool }

let no_flags = { fin = false; syn = false; rst = false; psh = false; ack = false }

let pp_flags ppf f =
  let bit c b = if b then String.make 1 c else "" in
  Format.fprintf ppf "%s%s%s%s%s" (bit 'S' f.syn) (bit 'A' f.ack) (bit 'F' f.fin) (bit 'R' f.rst)
    (bit 'P' f.psh)

type opts = {
  mss : int option;
  wscale : int option;
  sack_ok : bool;
  sack : (Tcp_seq.t * Tcp_seq.t) list;
  ts : (int * int) option;
  unknown : int list;
}

let no_opts = { mss = None; wscale = None; sack_ok = false; sack = []; ts = None; unknown = [] }
let opts_mss m = { no_opts with mss = Some m }

type segment = {
  src_port : int;
  dst_port : int;
  seq : Tcp_seq.t;
  ack : Tcp_seq.t;
  flags : flags;
  wnd : int;
  opts : opts;
  payload : Mbuf.t;
}

let flags_to_int f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor if f.ack then 16 else 0

let flags_of_int v =
  { fin = v land 1 <> 0;
    syn = v land 2 <> 0;
    rst = v land 4 <> 0;
    psh = v land 8 <> 0;
    ack = v land 16 <> 0 }

let seg_len s =
  Mbuf.length s.payload + (if s.flags.syn then 1 else 0) + if s.flags.fin then 1 else 0

(* 32-bit option payloads (timestamps, SACK edges) travel through the
   same int32 views the sequence-number fields use. *)
let set_u32 v off x = View.set_uint32 v off (Int32.of_int (x land 0xFFFFFFFF))
let get_u32 v off = Int32.to_int (View.get_uint32 v off) land 0xFFFFFFFF

let opts_raw_length o =
  (match o.mss with None -> 0 | Some _ -> 4)
  + (match o.wscale with None -> 0 | Some _ -> 3)
  + (if o.sack_ok then 2 else 0)
  + (match o.ts with None -> 0 | Some _ -> 10)
  + (match o.sack with [] -> 0 | l -> 2 + (8 * List.length l))

let opts_length o = (opts_raw_length o + 3) land lnot 3

let encode ?payload_sum ~src_ip ~dst_ip s =
  if s.wnd < 0 || s.wnd > 0xffff then
    invalid_arg "Tcp_wire.encode: window exceeds 16 bits (scale or clamp before encode)";
  let opt_len = opts_length s.opts in
  if opt_len > max_options then invalid_arg "Tcp_wire.encode: options exceed 40 bytes";
  let hlen = header_size + opt_len in
  let h = View.create hlen in
  View.set_uint16 h 0 s.src_port;
  View.set_uint16 h 2 s.dst_port;
  View.set_uint32 h 4 (Tcp_seq.to_int32 s.seq);
  View.set_uint32 h 8 (Tcp_seq.to_int32 s.ack);
  View.set_uint8 h 12 ((hlen / 4) lsl 4);
  View.set_uint8 h 13 (flags_to_int s.flags);
  View.set_uint16 h 14 s.wnd;
  View.set_uint16 h 16 0;
  View.set_uint16 h 18 0;
  let p = ref header_size in
  (match s.opts.mss with
  | None -> ()
  | Some mss ->
      View.set_uint8 h !p 2;
      View.set_uint8 h (!p + 1) 4;
      View.set_uint16 h (!p + 2) mss;
      p := !p + 4);
  (match s.opts.wscale with
  | None -> ()
  | Some w ->
      View.set_uint8 h !p 3;
      View.set_uint8 h (!p + 1) 3;
      View.set_uint8 h (!p + 2) w;
      p := !p + 3);
  if s.opts.sack_ok then begin
    View.set_uint8 h !p 4;
    View.set_uint8 h (!p + 1) 2;
    p := !p + 2
  end;
  (match s.opts.ts with
  | None -> ()
  | Some (tsval, tsecr) ->
      View.set_uint8 h !p 8;
      View.set_uint8 h (!p + 1) 10;
      set_u32 h (!p + 2) tsval;
      set_u32 h (!p + 6) tsecr;
      p := !p + 10);
  (match s.opts.sack with
  | [] -> ()
  | blocks ->
      View.set_uint8 h !p 5;
      View.set_uint8 h (!p + 1) (2 + (8 * List.length blocks));
      p := !p + 2;
      List.iter
        (fun (l, r) ->
          set_u32 h !p l;
          set_u32 h (!p + 4) r;
          p := !p + 8)
        blocks);
  while !p < hlen do
    View.set_uint8 h !p 1;
    incr p
  done;
  let m = Mbuf.prepend h s.payload in
  let pseudo =
    Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto ~len:(Mbuf.length m)
  in
  let csum =
    match payload_sum with
    | Some psum ->
        (* Fused path: the payload's partial sum was computed during the
           copy out of the send buffer; only the header (even length, so
           word parity composes) remains to be summed. *)
        Checksum.finish (pseudo + View.sum16 h 0 hlen + psum)
    | None -> Checksum.of_mbuf ~init:pseudo m
  in
  View.set_uint16 h 16 csum;
  m

(* Walk the option list, collecting the kinds we speak and recording the
   rest in [unknown] (newest last).  Returns [Error ()] — never raises —
   when the list is structurally broken: an option body truncated by the
   data offset, a zero/one-byte length, or a known kind with the wrong
   length. *)
let parse_opts v =
  let len = View.length v in
  let rec go i acc =
    if i >= len then Ok acc
    else
      match View.get_uint8 v i with
      | 0 -> Ok acc (* end of options *)
      | 1 -> go (i + 1) acc (* nop *)
      | kind ->
          if i + 1 >= len then Error ()
          else
            let olen = View.get_uint8 v (i + 1) in
            if olen < 2 || i + olen > len then Error ()
            else begin
              let known =
                match kind, olen with
                | 2, 4 -> Some { acc with mss = Some (View.get_uint16 v (i + 2)) }
                | 3, 3 -> Some { acc with wscale = Some (View.get_uint8 v (i + 2)) }
                | 4, 2 -> Some { acc with sack_ok = true }
                | 5, n when n >= 10 && n <= 34 && (n - 2) mod 8 = 0 ->
                    let nblocks = (n - 2) / 8 in
                    let rec blocks j k =
                      if k = 0 then []
                      else (get_u32 v j, get_u32 v (j + 4)) :: blocks (j + 8) (k - 1)
                    in
                    Some { acc with sack = blocks (i + 2) nblocks }
                | 8, 10 -> Some { acc with ts = Some (get_u32 v (i + 2), get_u32 v (i + 6)) }
                | (2 | 3 | 4 | 5 | 8), _ -> None (* known kind, broken length *)
                | _ -> Some { acc with unknown = kind :: acc.unknown }
              in
              match known with
              | None -> Error ()
              | Some acc -> go (i + olen) acc
            end
  in
  match go 0 no_opts with
  | Error () -> Error ()
  | Ok o -> Ok { o with unknown = List.rev o.unknown }

let decode ~src_ip ~dst_ip m =
  let len = Mbuf.length m in
  if len < header_size then None
  else begin
    let pseudo = Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto ~len in
    if Checksum.of_mbuf ~init:pseudo m <> 0 then None
    else begin
      let h = Mbuf.flatten (Mbuf.take m header_size) in
      let data_off = (View.get_uint8 h 12 lsr 4) * 4 in
      if data_off < header_size || data_off > len then None
      else begin
        let opts =
          if data_off > header_size then
            parse_opts
              (Mbuf.flatten (Mbuf.take (Mbuf.drop m header_size) (data_off - header_size)))
          else Ok no_opts
        in
        match opts with
        | Error () -> None (* malformed option list: reject, never raise *)
        | Ok opts ->
            Some
              { src_port = View.get_uint16 h 0;
                dst_port = View.get_uint16 h 2;
                seq = Tcp_seq.of_int32 (View.get_uint32 h 4);
                ack = Tcp_seq.of_int32 (View.get_uint32 h 8);
                flags = flags_of_int (View.get_uint8 h 13);
                wnd = View.get_uint16 h 14;
                opts;
                payload = Mbuf.drop m data_off }
      end
    end
  end

let pp_opts ppf o =
  let f = Format.fprintf in
  (match o.mss with None -> () | Some m -> f ppf " mss=%d" m);
  (match o.wscale with None -> () | Some w -> f ppf " ws=%d" w);
  if o.sack_ok then f ppf " sack-ok";
  (match o.sack with
  | [] -> ()
  | l ->
      f ppf " sack=";
      List.iteri (fun i (a, b) -> f ppf "%s%d-%d" (if i > 0 then "," else "") a b) l);
  (match o.ts with None -> () | Some (v, e) -> f ppf " ts=%d/%d" v e);
  match o.unknown with
  | [] -> ()
  | l -> f ppf " unk=%s" (String.concat "," (List.map string_of_int l))

let pp ppf s =
  Format.fprintf ppf "%d>%d seq=%d ack=%d %a wnd=%d len=%d%a" s.src_port s.dst_port s.seq s.ack
    pp_flags s.flags s.wnd (Mbuf.length s.payload) pp_opts s.opts
