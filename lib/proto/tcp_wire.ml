module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Ip = Uln_addr.Ip

let proto = 6
let header_size = 20

type flags = { fin : bool; syn : bool; rst : bool; psh : bool; ack : bool }

let no_flags = { fin = false; syn = false; rst = false; psh = false; ack = false }

let pp_flags ppf f =
  let bit c b = if b then String.make 1 c else "" in
  Format.fprintf ppf "%s%s%s%s%s" (bit 'S' f.syn) (bit 'A' f.ack) (bit 'F' f.fin) (bit 'R' f.rst)
    (bit 'P' f.psh)

type segment = {
  src_port : int;
  dst_port : int;
  seq : Tcp_seq.t;
  ack : Tcp_seq.t;
  flags : flags;
  wnd : int;
  mss : int option;
  payload : Mbuf.t;
}

let flags_to_int f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor if f.ack then 16 else 0

let flags_of_int v =
  { fin = v land 1 <> 0;
    syn = v land 2 <> 0;
    rst = v land 4 <> 0;
    psh = v land 8 <> 0;
    ack = v land 16 <> 0 }

let seg_len s =
  Mbuf.length s.payload + (if s.flags.syn then 1 else 0) + if s.flags.fin then 1 else 0

let encode ?payload_sum ~src_ip ~dst_ip s =
  let opt_len = match s.mss with None -> 0 | Some _ -> 4 in
  let hlen = header_size + opt_len in
  let h = View.create hlen in
  View.set_uint16 h 0 s.src_port;
  View.set_uint16 h 2 s.dst_port;
  View.set_uint32 h 4 (Tcp_seq.to_int32 s.seq);
  View.set_uint32 h 8 (Tcp_seq.to_int32 s.ack);
  View.set_uint8 h 12 ((hlen / 4) lsl 4);
  View.set_uint8 h 13 (flags_to_int s.flags);
  View.set_uint16 h 14 (Stdlib.min s.wnd 0xffff);
  View.set_uint16 h 16 0;
  View.set_uint16 h 18 0;
  (match s.mss with
  | None -> ()
  | Some mss ->
      View.set_uint8 h 20 2;
      View.set_uint8 h 21 4;
      View.set_uint16 h 22 mss);
  let m = Mbuf.prepend h s.payload in
  let pseudo =
    Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto ~len:(Mbuf.length m)
  in
  let csum =
    match payload_sum with
    | Some psum ->
        (* Fused path: the payload's partial sum was computed during the
           copy out of the send buffer; only the header (even length, so
           word parity composes) remains to be summed. *)
        Checksum.finish (pseudo + View.sum16 h 0 hlen + psum)
    | None -> Checksum.of_mbuf ~init:pseudo m
  in
  View.set_uint16 h 16 csum;
  m

let parse_mss options =
  (* Walk the option list looking for kind 2. *)
  let len = View.length options in
  let rec go i =
    if i >= len then None
    else
      match View.get_uint8 options i with
      | 0 -> None (* end of options *)
      | 1 -> go (i + 1) (* nop *)
      | kind ->
          if i + 1 >= len then None
          else
            let olen = View.get_uint8 options (i + 1) in
            if olen < 2 || i + olen > len then None
            else if kind = 2 && olen = 4 then Some (View.get_uint16 options (i + 2))
            else go (i + olen)
  in
  go 0

let decode ~src_ip ~dst_ip m =
  let len = Mbuf.length m in
  if len < header_size then None
  else begin
    let pseudo = Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto ~len in
    if Checksum.of_mbuf ~init:pseudo m <> 0 then None
    else begin
      let h = Mbuf.flatten (Mbuf.take m header_size) in
      let data_off = (View.get_uint8 h 12 lsr 4) * 4 in
      if data_off < header_size || data_off > len then None
      else begin
        let mss =
          if data_off > header_size then
            parse_mss (Mbuf.flatten (Mbuf.take (Mbuf.drop m header_size) (data_off - header_size)))
          else None
        in
        Some
          { src_port = View.get_uint16 h 0;
            dst_port = View.get_uint16 h 2;
            seq = Tcp_seq.of_int32 (View.get_uint32 h 4);
            ack = Tcp_seq.of_int32 (View.get_uint32 h 8);
            flags = flags_of_int (View.get_uint8 h 13);
            wnd = View.get_uint16 h 14;
            mss;
            payload = Mbuf.drop m data_off }
      end
    end
  end

let pp ppf s =
  Format.fprintf ppf "%d>%d seq=%d ack=%d %a wnd=%d len=%d" s.src_port s.dst_port s.seq s.ack
    pp_flags s.flags s.wnd (Mbuf.length s.payload)
