(** 32-bit TCP sequence-number arithmetic (RFC 793 §3.3).

    Sequence numbers live on a mod-2³² circle; comparisons are defined
    by the sign of the 32-bit signed difference, so they remain correct
    across wraparound.  Values are ints in [0, 2³²). *)

type t = int

val add : t -> int -> t
(** Advance on the circle. *)

val diff : t -> t -> int
(** Signed distance [a - b] in (-2³¹, 2³¹]. *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val max : t -> t -> t
val min : t -> t -> t

val in_window : t -> base:t -> size:int -> bool
(** Whether a sequence number falls in [base, base+size). *)

val to_int32 : t -> int32
val of_int32 : int32 -> t
