(* Session-typed RFC-793 state machine.

   Three layers share one transition relation:

   - The *typed* layer: a [('from, 'to_) transition] GADT whose indices
     are phantom state types, and ['s state] witnesses stepped through
     it.  Holding a witness of the right index is the only way to call
     the permit constructors ({!send_data}, {!bqi_exchange}), so a data
     send before ESTABLISHED, a BQI exchange outside the handshake, or
     a transition out of a finished connection ([`Gone]) are type
     errors — see test/compile_fail.

   - The *packed* layer: the engine stores a witness existentially in
     each connection record and moves it with {!Packed.apply}, which
     re-checks dynamically what the typed layer checks statically and
     asserts the shadow oracle (the engine's untyped [Tcp_state.t]
     field) against the witness at every step.

   - The *reflection* layer: the relation as data ({!edges}, {!ignored})
     for the proto-check pass — exhaustiveness over state x event,
     reachability, and divergence of the dispatch in {!Packed.apply_event}
     from the declared relation.

   The typed layer distinguishes the pre-open [`Closed] index from the
   terminal [`Gone] index; both shadow to [Tcp_state.Closed].  [`Gone]
   has no outgoing transitions, so a retired witness (TIME_WAIT expiry,
   abort, final FIN ack) is dead at compile time — TIME_WAIT
   resurrection is unrepresentable. *)

module State = Tcp_state

(* A witness is a tagged token: the phantom index is the static truth,
   the tag its runtime shadow, and [spent] enforces linearity (each
   witness steps at most once) dynamically where the type system cannot. *)
type 's state = { tag : State.t; mutable spent : bool }

type ('from, 'to_) transition =
  (* opening *)
  | Passive_open : ([ `Closed ], [ `Listen ]) transition
  | Active_open : ([ `Closed ], [ `Syn_sent ]) transition
  | Rcv_syn : ([ `Listen ], [ `Syn_received ]) transition
  | Rcv_syn_ack : ([ `Syn_sent ], [ `Established ]) transition
  | Simultaneous_syn : ([ `Syn_sent ], [ `Syn_received ]) transition
  | Rcv_ack_of_syn : ([ `Syn_received ], [ `Established ]) transition
  (* our FIN goes out *)
  | Send_fin_established : ([ `Established ], [ `Fin_wait_1 ]) transition
  | Send_fin_syn_received : ([ `Syn_received ], [ `Fin_wait_1 ]) transition
  | Send_fin_close_wait : ([ `Close_wait ], [ `Last_ack ]) transition
  (* peer's FIN arrives *)
  | Rcv_fin_established : ([ `Established ], [ `Close_wait ]) transition
  | Rcv_fin_fin_wait_1 : ([ `Fin_wait_1 ], [ `Closing ]) transition
  | Rcv_fin_fin_wait_2 : ([ `Fin_wait_2 ], [ `Time_wait ]) transition
  (* our FIN is acknowledged *)
  | Fin_acked_fin_wait_1 : ([ `Fin_wait_1 ], [ `Fin_wait_2 ]) transition
  | Fin_acked_closing : ([ `Closing ], [ `Time_wait ]) transition
  | Fin_acked_last_ack : ([ `Last_ack ], [ `Gone ]) transition
  (* local close before synchronization *)
  | Close_listen : ([ `Listen ], [ `Gone ]) transition
  | Close_syn_sent : ([ `Syn_sent ], [ `Gone ]) transition
  (* quiet-time expiry *)
  | Expire_2msl : ([ `Time_wait ], [ `Gone ]) transition
  (* aborts: RST, unrecoverable error, application abort *)
  | Abort_listen : ([ `Listen ], [ `Gone ]) transition
  | Abort_syn_sent : ([ `Syn_sent ], [ `Gone ]) transition
  | Abort_syn_received : ([ `Syn_received ], [ `Gone ]) transition
  | Abort_established : ([ `Established ], [ `Gone ]) transition
  | Abort_fin_wait_1 : ([ `Fin_wait_1 ], [ `Gone ]) transition
  | Abort_fin_wait_2 : ([ `Fin_wait_2 ], [ `Gone ]) transition
  | Abort_close_wait : ([ `Close_wait ], [ `Gone ]) transition
  | Abort_closing : ([ `Closing ], [ `Gone ]) transition
  | Abort_last_ack : ([ `Last_ack ], [ `Gone ]) transition
  | Abort_time_wait : ([ `Time_wait ], [ `Gone ]) transition

let source : type f t. (f, t) transition -> State.t = function
  | Passive_open -> State.Closed
  | Active_open -> State.Closed
  | Rcv_syn -> State.Listen
  | Rcv_syn_ack -> State.Syn_sent
  | Simultaneous_syn -> State.Syn_sent
  | Rcv_ack_of_syn -> State.Syn_received
  | Send_fin_established -> State.Established
  | Send_fin_syn_received -> State.Syn_received
  | Send_fin_close_wait -> State.Close_wait
  | Rcv_fin_established -> State.Established
  | Rcv_fin_fin_wait_1 -> State.Fin_wait_1
  | Rcv_fin_fin_wait_2 -> State.Fin_wait_2
  | Fin_acked_fin_wait_1 -> State.Fin_wait_1
  | Fin_acked_closing -> State.Closing
  | Fin_acked_last_ack -> State.Last_ack
  | Close_listen -> State.Listen
  | Close_syn_sent -> State.Syn_sent
  | Expire_2msl -> State.Time_wait
  | Abort_listen -> State.Listen
  | Abort_syn_sent -> State.Syn_sent
  | Abort_syn_received -> State.Syn_received
  | Abort_established -> State.Established
  | Abort_fin_wait_1 -> State.Fin_wait_1
  | Abort_fin_wait_2 -> State.Fin_wait_2
  | Abort_close_wait -> State.Close_wait
  | Abort_closing -> State.Closing
  | Abort_last_ack -> State.Last_ack
  | Abort_time_wait -> State.Time_wait

(* [`Gone] shadows to [Closed]: the engine's untyped view has a single
   terminal/initial state, the typed view splits it. *)
let target : type f t. (f, t) transition -> State.t = function
  | Passive_open -> State.Listen
  | Active_open -> State.Syn_sent
  | Rcv_syn -> State.Syn_received
  | Rcv_syn_ack -> State.Established
  | Simultaneous_syn -> State.Syn_received
  | Rcv_ack_of_syn -> State.Established
  | Send_fin_established -> State.Fin_wait_1
  | Send_fin_syn_received -> State.Fin_wait_1
  | Send_fin_close_wait -> State.Last_ack
  | Rcv_fin_established -> State.Close_wait
  | Rcv_fin_fin_wait_1 -> State.Closing
  | Rcv_fin_fin_wait_2 -> State.Time_wait
  | Fin_acked_fin_wait_1 -> State.Fin_wait_2
  | Fin_acked_closing -> State.Time_wait
  | Fin_acked_last_ack -> State.Closed
  | Close_listen -> State.Closed
  | Close_syn_sent -> State.Closed
  | Expire_2msl -> State.Closed
  | Abort_listen -> State.Closed
  | Abort_syn_sent -> State.Closed
  | Abort_syn_received -> State.Closed
  | Abort_established -> State.Closed
  | Abort_fin_wait_1 -> State.Closed
  | Abort_fin_wait_2 -> State.Closed
  | Abort_close_wait -> State.Closed
  | Abort_closing -> State.Closed
  | Abort_last_ack -> State.Closed
  | Abort_time_wait -> State.Closed

(* {2 Events: the transition relation's second axis} *)

type event =
  | Ev_passive_open
  | Ev_active_open
  | Ev_rcv_syn
  | Ev_rcv_syn_ack
  | Ev_rcv_ack_of_syn
  | Ev_send_fin
  | Ev_rcv_fin
  | Ev_fin_acked
  | Ev_close
  | Ev_abort
  | Ev_expire_2msl

let all_events =
  [ Ev_passive_open;
    Ev_active_open;
    Ev_rcv_syn;
    Ev_rcv_syn_ack;
    Ev_rcv_ack_of_syn;
    Ev_send_fin;
    Ev_rcv_fin;
    Ev_fin_acked;
    Ev_close;
    Ev_abort;
    Ev_expire_2msl ]

let event_name = function
  | Ev_passive_open -> "passive_open"
  | Ev_active_open -> "active_open"
  | Ev_rcv_syn -> "rcv_syn"
  | Ev_rcv_syn_ack -> "rcv_syn_ack"
  | Ev_rcv_ack_of_syn -> "rcv_ack_of_syn"
  | Ev_send_fin -> "send_fin"
  | Ev_rcv_fin -> "rcv_fin"
  | Ev_fin_acked -> "fin_acked"
  | Ev_close -> "close"
  | Ev_abort -> "abort"
  | Ev_expire_2msl -> "expire_2msl"

let event_of : type f t. (f, t) transition -> event = function
  | Passive_open -> Ev_passive_open
  | Active_open -> Ev_active_open
  | Rcv_syn -> Ev_rcv_syn
  | Rcv_syn_ack -> Ev_rcv_syn_ack
  | Simultaneous_syn -> Ev_rcv_syn
  | Rcv_ack_of_syn -> Ev_rcv_ack_of_syn
  | Send_fin_established -> Ev_send_fin
  | Send_fin_syn_received -> Ev_send_fin
  | Send_fin_close_wait -> Ev_send_fin
  | Rcv_fin_established -> Ev_rcv_fin
  | Rcv_fin_fin_wait_1 -> Ev_rcv_fin
  | Rcv_fin_fin_wait_2 -> Ev_rcv_fin
  | Fin_acked_fin_wait_1 -> Ev_fin_acked
  | Fin_acked_closing -> Ev_fin_acked
  | Fin_acked_last_ack -> Ev_fin_acked
  | Close_listen -> Ev_close
  | Close_syn_sent -> Ev_close
  | Expire_2msl -> Ev_expire_2msl
  | Abort_listen -> Ev_abort
  | Abort_syn_sent -> Ev_abort
  | Abort_syn_received -> Ev_abort
  | Abort_established -> Ev_abort
  | Abort_fin_wait_1 -> Ev_abort
  | Abort_fin_wait_2 -> Ev_abort
  | Abort_close_wait -> Ev_abort
  | Abort_closing -> Ev_abort
  | Abort_last_ack -> Ev_abort
  | Abort_time_wait -> Ev_abort

(* {2 Violations and counters} *)

type violation =
  | Reused of State.t  (** a spent witness was stepped again *)
  | Wrong_source of { witness : State.t; wanted : State.t }
  | Shadow_divergence of { witness : State.t; shadow : State.t }

exception Violation of violation

let pp_violation ppf = function
  | Reused s -> Format.fprintf ppf "spent %s witness stepped again" (State.to_string s)
  | Wrong_source { witness; wanted } ->
      Format.fprintf ppf "transition from %s applied to a %s witness" (State.to_string wanted)
        (State.to_string witness)
  | Shadow_divergence { witness; shadow } ->
      Format.fprintf ppf "shadow oracle diverged: witness %s, engine state %s"
        (State.to_string witness) (State.to_string shadow)

let applied = ref 0
let shadow_checks = ref 0
let transitions_applied () = !applied
let shadow_checks_made () = !shadow_checks

let reset_counters () =
  applied := 0;
  shadow_checks := 0

(* The single dynamic core both the typed [step] and the packed [apply]
   go through: linearity, source agreement, bookkeeping. *)
let advance : type a b. a state -> src:State.t -> dst:State.t -> b state =
 fun w ~src ~dst ->
  if w.spent then raise (Violation (Reused w.tag));
  if w.tag <> src then raise (Violation (Wrong_source { witness = w.tag; wanted = src }));
  w.spent <- true;
  incr applied;
  { tag = dst; spent = false }

let step (w : 's state) (tr : ('s, 't) transition) : 't state =
  advance w ~src:(source tr) ~dst:(target tr)

let closed () = { tag = State.Closed; spent = false }
let import_established () = { tag = State.Established; spent = false }
let state_of w = w.tag

(* {2 Permits}

   A permit is a proof, not a token: constructing one requires a witness
   whose index is in the permitted row, and it is not consumed.  The
   value-level mirrors below exist for proto-check, which verifies they
   agree with [Tcp_state]'s predicates. *)

type send_permit = Send_permit of State.t
type bqi_permit = Bqi_permit of State.t
type option_permit = Option_permit of State.t

let send_data (w : [< `Established | `Close_wait ] state) = Send_permit w.tag
let bqi_exchange (w : [< `Listen | `Syn_sent | `Syn_received ] state) = Bqi_permit w.tag

let negotiate_options (w : [< `Listen | `Syn_sent | `Syn_received ] state) =
  Option_permit w.tag

let send_states = [ State.Established; State.Close_wait ]
let bqi_states = [ State.Listen; State.Syn_sent; State.Syn_received ]
let opt_states = [ State.Listen; State.Syn_sent; State.Syn_received ]
let recv_states = [ State.Established; State.Fin_wait_1; State.Fin_wait_2 ]

(* {2 Reflection: the relation as data} *)

type edge = { e_from : State.t; e_event : event; e_to : State.t }

type any_transition = Any : ('f, 't) transition -> any_transition

let all_transitions =
  [ Any Passive_open;
    Any Active_open;
    Any Rcv_syn;
    Any Rcv_syn_ack;
    Any Simultaneous_syn;
    Any Rcv_ack_of_syn;
    Any Send_fin_established;
    Any Send_fin_syn_received;
    Any Send_fin_close_wait;
    Any Rcv_fin_established;
    Any Rcv_fin_fin_wait_1;
    Any Rcv_fin_fin_wait_2;
    Any Fin_acked_fin_wait_1;
    Any Fin_acked_closing;
    Any Fin_acked_last_ack;
    Any Close_listen;
    Any Close_syn_sent;
    Any Expire_2msl;
    Any Abort_listen;
    Any Abort_syn_sent;
    Any Abort_syn_received;
    Any Abort_established;
    Any Abort_fin_wait_1;
    Any Abort_fin_wait_2;
    Any Abort_close_wait;
    Any Abort_closing;
    Any Abort_last_ack;
    Any Abort_time_wait ]

let edges =
  List.map
    (fun (Any tr) -> { e_from = source tr; e_event = event_of tr; e_to = target tr })
    all_transitions

let all_states = State.all

(* Every (state, event) pair the relation deliberately leaves alone,
   with the reason.  proto-check requires [edges] and [ignored] to
   tile the full state x event grid with no gaps and no overlaps: an
   event someone adds without deciding its fate in every state is a
   build failure, not a silent drop. *)
let ignored s =
  let open State in
  match s with
  | Closed ->
      [ (Ev_rcv_syn, "no connection: the demux answers stray segments with RST");
        (Ev_rcv_syn_ack, "no connection: stray segment, RST path");
        (Ev_rcv_ack_of_syn, "no connection: stray segment, RST path");
        (Ev_send_fin, "nothing to close; write guards reject first");
        (Ev_rcv_fin, "no connection: stray segment, RST path");
        (Ev_fin_acked, "no connection: stray segment, RST path");
        (Ev_close, "closing a closed endpoint is a no-op");
        (Ev_abort, "aborting a closed endpoint is a no-op");
        (Ev_expire_2msl, "no quiet-time timer outside TIME_WAIT") ]
  | Listen ->
      [ (Ev_passive_open, "already listening");
        (Ev_active_open, "RFC 793 SEND-in-LISTEN conversion is not modeled: open a new endpoint");
        (Ev_rcv_syn_ack, "ACK at a listener without a connection: RST path");
        (Ev_rcv_ack_of_syn, "ACK at a listener without a connection: RST path");
        (Ev_send_fin, "a listener has no data path, nothing to FIN");
        (Ev_rcv_fin, "FIN without a connection: RST path");
        (Ev_fin_acked, "no FIN outstanding on a listener");
        (Ev_expire_2msl, "no quiet-time timer on a listener") ]
  | Syn_sent ->
      [ (Ev_passive_open, "endpoint already opening actively");
        (Ev_active_open, "connect is already in progress");
        (Ev_rcv_ack_of_syn, "acceptable ACK without SYN: wait for the SYN-ACK proper");
        (Ev_send_fin, "close before synchronization deletes the TCB instead (close edge)");
        (Ev_rcv_fin, "FIN before our SYN is acknowledged: unsynchronized, dropped");
        (Ev_fin_acked, "no FIN outstanding during the handshake");
        (Ev_expire_2msl, "no quiet-time timer during the handshake") ]
  | Syn_received ->
      [ (Ev_passive_open, "handshake already under way");
        (Ev_active_open, "handshake already under way");
        (Ev_rcv_syn, "SYN retransmission: duplicate, dropped");
        (Ev_rcv_syn_ack, "a SYN-ACK here is classified by its ACK half: rcv_ack_of_syn");
        (Ev_rcv_fin, "FIN before the handshake-completing ACK: dropped (a FIN piggybacked on \
                      the ACK establishes first, then takes the Established rcv_fin edge)");
        (Ev_fin_acked, "our FIN, if queued by close, has not been sent yet");
        (Ev_close, "close queues a FIN; the state moves when the FIN is emitted (send_fin)");
        (Ev_expire_2msl, "no quiet-time timer during the handshake") ]
  | Established ->
      [ (Ev_passive_open, "connection already open");
        (Ev_active_open, "connection already open");
        (Ev_rcv_syn, "stray SYN on a synchronized connection: dropped");
        (Ev_rcv_syn_ack, "SYN-ACK retransmission: our ACK is regenerated, no state change");
        (Ev_rcv_ack_of_syn, "duplicate handshake ACK: benign");
        (Ev_fin_acked, "no FIN outstanding");
        (Ev_close, "close queues a FIN; the state moves when the FIN is emitted (send_fin)");
        (Ev_expire_2msl, "no quiet-time timer while open") ]
  | Fin_wait_1 ->
      [ (Ev_passive_open, "connection already open");
        (Ev_active_open, "connection already open");
        (Ev_rcv_syn, "stray SYN on a synchronized connection: dropped");
        (Ev_rcv_syn_ack, "handshake long done: duplicate, dropped");
        (Ev_rcv_ack_of_syn, "handshake long done: duplicate, dropped");
        (Ev_send_fin, "FIN retransmission leaves the state alone");
        (Ev_close, "already closing");
        (Ev_expire_2msl, "no quiet-time timer before TIME_WAIT") ]
  | Fin_wait_2 ->
      [ (Ev_passive_open, "connection already open");
        (Ev_active_open, "connection already open");
        (Ev_rcv_syn, "stray SYN on a synchronized connection: dropped");
        (Ev_rcv_syn_ack, "handshake long done: duplicate, dropped");
        (Ev_rcv_ack_of_syn, "handshake long done: duplicate, dropped");
        (Ev_send_fin, "our FIN is already acknowledged; nothing to send");
        (Ev_fin_acked, "our FIN is already acknowledged; duplicate ACK");
        (Ev_close, "already closing");
        (Ev_expire_2msl, "no quiet-time timer before TIME_WAIT") ]
  | Close_wait ->
      [ (Ev_passive_open, "connection already open");
        (Ev_active_open, "connection already open");
        (Ev_rcv_syn, "stray SYN on a synchronized connection: dropped");
        (Ev_rcv_syn_ack, "handshake long done: duplicate, dropped");
        (Ev_rcv_ack_of_syn, "handshake long done: duplicate, dropped");
        (Ev_rcv_fin, "FIN retransmission: duplicate, re-ACKed");
        (Ev_fin_acked, "our FIN, if queued by close, has not been sent yet");
        (Ev_close, "close queues a FIN; the state moves when the FIN is emitted (send_fin)");
        (Ev_expire_2msl, "no quiet-time timer before TIME_WAIT") ]
  | Closing ->
      [ (Ev_passive_open, "connection already open");
        (Ev_active_open, "connection already open");
        (Ev_rcv_syn, "stray SYN on a synchronized connection: dropped");
        (Ev_rcv_syn_ack, "handshake long done: duplicate, dropped");
        (Ev_rcv_ack_of_syn, "handshake long done: duplicate, dropped");
        (Ev_send_fin, "FIN retransmission leaves the state alone");
        (Ev_rcv_fin, "FIN retransmission: duplicate, re-ACKed");
        (Ev_close, "already closing");
        (Ev_expire_2msl, "no quiet-time timer before TIME_WAIT") ]
  | Last_ack ->
      [ (Ev_passive_open, "connection already open");
        (Ev_active_open, "connection already open");
        (Ev_rcv_syn, "stray SYN on a synchronized connection: dropped");
        (Ev_rcv_syn_ack, "handshake long done: duplicate, dropped");
        (Ev_rcv_ack_of_syn, "handshake long done: duplicate, dropped");
        (Ev_send_fin, "FIN retransmission leaves the state alone");
        (Ev_rcv_fin, "FIN retransmission: duplicate, re-ACKed");
        (Ev_close, "already closing");
        (Ev_expire_2msl, "no quiet-time timer before TIME_WAIT") ]
  | Time_wait ->
      [ (Ev_passive_open, "endpoint quiet time: reincarnation goes through the registry wheel");
        (Ev_active_open, "endpoint quiet time: reincarnation goes through the registry wheel");
        (Ev_rcv_syn, "SYN for a reincarnation is the registry's tw_claim, not a transition here");
        (Ev_rcv_syn_ack, "stray segment during quiet time: dropped");
        (Ev_rcv_ack_of_syn, "stray segment during quiet time: dropped");
        (Ev_send_fin, "both FINs exchanged; nothing to send");
        (Ev_rcv_fin, "FIN retransmission: duplicate, re-ACKed, 2MSL restarts without transition");
        (Ev_fin_acked, "our FIN was acknowledged on entry; duplicate ACK");
        (Ev_close, "already closed locally") ]

(* {2 Packed witnesses: what the engine stores} *)

module Packed = struct
  type t = P : 's state -> t

  let state (P w) = w.tag
  let active_open () = P (step (closed ()) Active_open)
  let passive_accept () = P (step (step (closed ()) Passive_open) Rcv_syn)
  let import () = P (import_established ())

  (* Analysis/test entry only: a witness parked at an arbitrary state,
     with no typed pedigree.  proto-check uses it to drive the runtime
     machine over the whole relation; engine code must not. *)
  let at tag = P { tag; spent = false }

  let check_shadow (P w) shadow =
    incr shadow_checks;
    if w.tag <> shadow then
      raise (Violation (Shadow_divergence { witness = w.tag; shadow }))

  let apply (P w) tr = P (advance w ~src:(source tr) ~dst:(target tr))

  (* Dynamic proof queries: the bridge from the engine's existential
     storage back to the typed layer.  Each mints a fresh unspent
     witness justified by the packed witness's current tag. *)
  let established (P w) =
    if (not w.spent) && w.tag = State.Established then
      Some ({ tag = State.Established; spent = false } : [ `Established ] state)
    else None

  let syn_sent (P w) =
    if (not w.spent) && w.tag = State.Syn_sent then
      Some ({ tag = State.Syn_sent; spent = false } : [ `Syn_sent ] state)
    else None

  let send_permit (P w) =
    if (not w.spent) && List.mem w.tag send_states then Some (Send_permit w.tag) else None

  let bqi_permit (P w) =
    if (not w.spent) && List.mem w.tag bqi_states then Some (Bqi_permit w.tag) else None

  let option_permit (P w) =
    if (not w.spent) && List.mem w.tag opt_states then Some (Option_permit w.tag) else None

  (* Runtime dispatch: state x event -> witness application.  This is
     the hand-written double of the declared relation; proto-check
     walks every (state, event) pair through it and fails the build on
     any divergence from [edges] + [ignored]. *)
  let apply_event p ev =
    let open State in
    match (state p, ev) with
    | Closed, Ev_passive_open -> Ok (apply p Passive_open)
    | Closed, Ev_active_open -> Ok (apply p Active_open)
    | Listen, Ev_rcv_syn -> Ok (apply p Rcv_syn)
    | Listen, Ev_close -> Ok (apply p Close_listen)
    | Listen, Ev_abort -> Ok (apply p Abort_listen)
    | Syn_sent, Ev_rcv_syn_ack -> Ok (apply p Rcv_syn_ack)
    | Syn_sent, Ev_rcv_syn -> Ok (apply p Simultaneous_syn)
    | Syn_sent, Ev_close -> Ok (apply p Close_syn_sent)
    | Syn_sent, Ev_abort -> Ok (apply p Abort_syn_sent)
    | Syn_received, Ev_rcv_ack_of_syn -> Ok (apply p Rcv_ack_of_syn)
    | Syn_received, Ev_send_fin -> Ok (apply p Send_fin_syn_received)
    | Syn_received, Ev_abort -> Ok (apply p Abort_syn_received)
    | Established, Ev_send_fin -> Ok (apply p Send_fin_established)
    | Established, Ev_rcv_fin -> Ok (apply p Rcv_fin_established)
    | Established, Ev_abort -> Ok (apply p Abort_established)
    | Fin_wait_1, Ev_rcv_fin -> Ok (apply p Rcv_fin_fin_wait_1)
    | Fin_wait_1, Ev_fin_acked -> Ok (apply p Fin_acked_fin_wait_1)
    | Fin_wait_1, Ev_abort -> Ok (apply p Abort_fin_wait_1)
    | Fin_wait_2, Ev_rcv_fin -> Ok (apply p Rcv_fin_fin_wait_2)
    | Fin_wait_2, Ev_abort -> Ok (apply p Abort_fin_wait_2)
    | Close_wait, Ev_send_fin -> Ok (apply p Send_fin_close_wait)
    | Close_wait, Ev_abort -> Ok (apply p Abort_close_wait)
    | Closing, Ev_fin_acked -> Ok (apply p Fin_acked_closing)
    | Closing, Ev_abort -> Ok (apply p Abort_closing)
    | Last_ack, Ev_fin_acked -> Ok (apply p Fin_acked_last_ack)
    | Last_ack, Ev_abort -> Ok (apply p Abort_last_ack)
    | Time_wait, Ev_expire_2msl -> Ok (apply p Expire_2msl)
    | Time_wait, Ev_abort -> Ok (apply p Abort_time_wait)
    | s, e -> (
        match List.assoc_opt e (ignored s) with
        | Some reason -> Error (`Ignored reason)
        | None ->
            Error
              (`Invalid
                (Printf.sprintf "unhandled pair: %s x %s" (State.to_string s) (event_name e))))

  (* Retiring a connection record: pick the edge to Closed that matches
     how the engine got here.  [clean] is finish_cleanly (local close
     before sync, final FIN ack, 2MSL expiry); otherwise it is an
     abort/reset/error teardown. *)
  let retire p ~clean =
    let open State in
    match (state p, clean) with
    | Closed, _ -> p
    | Listen, true -> apply p Close_listen
    | Syn_sent, true -> apply p Close_syn_sent
    | Last_ack, true -> apply p Fin_acked_last_ack
    | Time_wait, true -> apply p Expire_2msl
    | Listen, false -> apply p Abort_listen
    | Syn_sent, false -> apply p Abort_syn_sent
    | Syn_received, _ -> apply p Abort_syn_received
    | Established, _ -> apply p Abort_established
    | Fin_wait_1, _ -> apply p Abort_fin_wait_1
    | Fin_wait_2, _ -> apply p Abort_fin_wait_2
    | Close_wait, _ -> apply p Abort_close_wait
    | Closing, _ -> apply p Abort_closing
    | Last_ack, false -> apply p Abort_last_ack
    | Time_wait, false -> apply p Abort_time_wait
end
