module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module Timers = Uln_engine.Timers
module Rng = Uln_engine.Rng
module Mailbox = Uln_engine.Mailbox
module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Bytequeue = Uln_buf.Bytequeue
module Iovec = Uln_buf.Iovec
module Ip = Uln_addr.Ip
module Costs = Uln_host.Costs
module Cpu = Uln_host.Cpu
module State = Tcp_state

(* Longest single advance of the pacing horizon (see the pacing note in
   [output_once]): bounds the damage of a delayed-ACK-inflated srtt
   sample while leaving real pacing gaps — fractions of an RTT per
   episode — untouched. *)
let pace_max_gap_us = 2000.

exception Connection_error of string

(* The send queue has two representations: the classic contiguous
   socket buffer (data is copied in on write and copied out per
   segment), and the zero-copy iovec chain (segments re-reference the
   application's buffers; a slot's release callback fires when its last
   byte is acknowledged).  Which one a connection gets is fixed at
   creation by [Tcp_params.zero_copy]. *)
type sendq = Q of Bytequeue.t | I of Iovec.t

let sendq_length = function Q q -> Bytequeue.length q | I i -> Iovec.length i

(* Peek without a checksum (retransmissions, window probes): the encode
   path will sum the payload itself. *)
let sendq_peek sq ~off ~len =
  match sq with
  | Q q -> Mbuf.of_view (Bytequeue.peek q ~off ~len)
  | I i -> Iovec.peek i ~off ~len

(* Peek with the running 16-bit sum.  On the copying path this is the
   fused copy+checksum pass; on the iovec chain it is a pure checksum
   walk over the referenced fragments (parity-correct across odd-length
   boundaries) — no bytes move. *)
let sendq_peek_sum sq ~off ~len =
  match sq with
  | Q q ->
      let v, sum = Bytequeue.peek_sum q ~off ~len in
      (Mbuf.of_view v, sum)
  | I i -> Iovec.peek_sum i ~off ~len

let sendq_drop ?sink sq n =
  match sq with Q q -> Bytequeue.drop q n | I i -> Iovec.drop ?sink i n
let sendq_clear = function Q q -> Bytequeue.clear q | I i -> Iovec.clear i

type snapshot = {
  snap_local_port : int;
  snap_remote_ip : Ip.t;
  snap_remote_port : int;
  snap_iss : Tcp_seq.t;
  snap_irs : Tcp_seq.t;
  snap_snd_una : Tcp_seq.t;
  snap_snd_nxt : Tcp_seq.t;
  snap_snd_wnd : int;
  snap_rcv_nxt : Tcp_seq.t;
  snap_mss : int;
  snap_srtt_us : float;
  snap_rttvar_us : float;
  snap_rcv_pending : string;
}

type conn = {
  engine : t;
  local_port : int;
  remote_ip : Ip.t;
  remote_port : int;
  mutable state : State.t;
  mutable fsm : Tcp_fsm.Packed.t;
      (* The session-typed witness; [state] is its shadow oracle,
         asserted equal at every transition. *)
  (* send side *)
  snd_buf : sendq;
  mutable iss : Tcp_seq.t;
  mutable snd_una : Tcp_seq.t;
  mutable snd_nxt : Tcp_seq.t;
  mutable snd_max : Tcp_seq.t; (* highest sequence ever sent *)
  mutable snd_wnd : int;
  mutable snd_wl1 : Tcp_seq.t;
  mutable snd_wl2 : Tcp_seq.t;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  (* receive side *)
  rcv_buf : Bytequeue.t;
  mutable irs : Tcp_seq.t;
  mutable rcv_nxt : Tcp_seq.t;
  mutable rcv_adv : Tcp_seq.t; (* highest advertised rcv_nxt + window *)
  mutable loaned_bytes : int; (* delivered as loans, not yet returned *)
  mutable fin_received : bool;
  mutable ooseg : (Tcp_seq.t * View.t) list; (* out-of-order, sorted by seq *)
  mutable recent_oo : Tcp_seq.t option; (* newest out-of-order arrival (SACK block 1) *)
  (* congestion control *)
  cc : Cong_control.t;
  mutable dupacks : int;
  (* negotiated options (frozen once the handshake completes) *)
  mutable ws_ok : bool;
  mutable snd_scale : int; (* shift applied to windows the peer advertises *)
  mutable rcv_scale : int; (* shift applied to windows we advertise *)
  mutable sack_ok : bool;
  mutable ts_ok : bool;
  mutable ts_recent : int; (* peer's newest in-window TSval (our TSecr) *)
  (* SACK send-side scoreboard *)
  sb : Sack.t;
  mutable sack_cursor : Tcp_seq.t; (* hole-retransmission cursor *)
  mutable sack_rexmits : int;
  (* recovery-episode accounting (loss detection -> snd_una past the
     frontier at detection), the bench's recovery-time samples *)
  mutable rec_start : Time.t option;
  mutable rec_point : Tcp_seq.t;
  mutable rec_samples_us : float list; (* newest first *)
  (* option diagnostics *)
  mutable unknown_opts : int;
  mutable wnd_clamps : int;
  mutable last_emit : Time.t;
  (* RTT estimation *)
  mutable srtt_us : float;
  mutable rttvar_us : float;
  mutable rtt_min_us : float; (* smallest sample seen; 0 until the first *)
  mutable rto : Time.span;
  mutable backoff : int;
  mutable rtt_timing : (Tcp_seq.t * Time.t) option;
  (* negotiated *)
  mutable mss : int;
  (* timers *)
  mutable rexmt : Timers.handle option;
  mutable persist : Timers.handle option;
  mutable delack : Timers.handle option;
  mutable time_wait : Timers.handle option;
  mutable keepalive : Timers.handle option;
  mutable idle_since : Time.t;
  mutable ka_probes : int;
  mutable unacked_segs : int;
  mutable ack_now : bool;
  (* software pacing (Tcp_params.pacing) *)
  mutable pace_next : Time.t; (* earliest instant the next data send may leave *)
  mutable pacer : Timers.handle option;
  (* header-prediction accounting *)
  mutable fast_acks : int;
  mutable fast_data : int;
  mutable slow_segments : int;
  (* engine bookkeeping *)
  mutable output_active : bool;
  mutable output_pending : bool;
  mutable error : string option;
  mutable detached : bool; (* exported: no longer usable *)
  waiters : Sched.waker Queue.t; (* readers, writers, state watchers *)
  mutable closed_callbacks : (unit -> unit) list;
  (* queue to notify on establish, with the witness minted at that instant *)
  mutable accept_box : (conn * [ `Established ] Tcp_fsm.state) Mailbox.t option;
}

and listener = { lport : int; backlog : (conn * [ `Established ] Tcp_fsm.state) Mailbox.t }

(* An in-progress receive merge (rx_coalesce): contiguous in-order
   segments from one connection, accumulated during an rx burst and
   processed as a single large segment at flush.  Payload bytes are
   copied out of each frame at absorb time — the frames themselves are
   recycled by the library as soon as its input call returns. *)
and gro_pending = {
  g_conn : conn;
  g_first : Tcp_wire.segment; (* metadata template: ports, starting seq *)
  mutable g_chunks : View.t list; (* absorbed payload copies, newest first *)
  mutable g_len : int;
  mutable g_count : int; (* original segments represented *)
  g_limit : int; (* merge cap fixed when the run starts *)
  g_room : int; (* receive window at run start; never merge past it *)
  mutable g_ack : Tcp_seq.t; (* newest (monotone) ack seen *)
  mutable g_wnd : int; (* wire window of the newest segment *)
  mutable g_ts : (int * int) option; (* newest timestamp pair *)
  mutable g_psh : bool;
}

and t = {
  env : Proto_env.t;
  ip : Ipv4.t;
  prm : Tcp_params.t;
  pcbs : (int32 * int * int, conn) Hashtbl.t; (* remote ip, remote port, local port *)
  listeners : (int, listener) Hashtbl.t;
  mutable rst_on_unknown : bool;
  mutable unknown_hook : (src:Ip.t -> dst:Ip.t -> Mbuf.t -> bool) option;
  mutable time_wait_hook : (conn -> bool) option;
  mutable segments_in : int;
  mutable segments_out : int;
  mutable retransmissions : int;
  mutable rsts_out : int;
  mutable checksum_failures : int;
  mutable predicted_acks : int;
  mutable predicted_data : int;
  mutable unknown_options : int;
  (* receive coalescing (rx_coalesce) *)
  mutable in_burst : int;
      (* begin_burst/end_burst nesting depth: receive threads of
         different connections share one engine, and an episode that
         sleeps between ring polls overlaps its siblings' brackets *)
  mutable gro : gro_pending option;
  mutable gro_segs : int;
      (* original segments represented by the segment currently inside
         process_segment: 1 on the per-packet path, the merge count
         while a flush is being processed — schedule_ack's multiplier *)
  mutable gro_merged : int; (* segments absorbed beyond the first of a run *)
  mutable gro_flushes : int; (* merged runs handed to process_segment *)
  mutable acks_elided : int; (* ACKs burst_ack coalescing suppressed *)
  (* transmit fast path (tx_gso / tx_complete_coalesce / pacing) *)
  mutable gso_sends : int; (* oversized logical segments handed to the NIC *)
  mutable gso_fallbacks : int; (* data sends that went per-segment with tx_gso on *)
  mutable tx_release_batches : int; (* batched zero-copy release flushes *)
  mutable tx_releases : int; (* release callbacks fired through those batches *)
  mutable pacer_waits : int; (* data sends the pacer deferred *)
  mutable pacer_wait_us : float; (* total deferral *)
  pacer_hist : (int, int) Hashtbl.t; (* log2(deferral in us) -> count *)
}

let params t = t.prm
let set_rst_on_unknown t v = t.rst_on_unknown <- v
let set_unknown_segment_hook t f = t.unknown_hook <- Some f
let set_time_wait_hook t f = t.time_wait_hook <- Some f
let segments_in t = t.segments_in
let segments_out t = t.segments_out
let retransmissions t = t.retransmissions
let rsts_out t = t.rsts_out
let checksum_failures t = t.checksum_failures
let active_connections t = Hashtbl.length t.pcbs
let predicted_acks t = t.predicted_acks
let predicted_data t = t.predicted_data
let unknown_options t = t.unknown_options
let gro_merged t = t.gro_merged
let gro_flushes t = t.gro_flushes
let acks_elided t = t.acks_elided
let gso_sends t = t.gso_sends
let gso_fallbacks t = t.gso_fallbacks
let tx_release_batches t = t.tx_release_batches
let tx_releases t = t.tx_releases
let pacer_waits t = t.pacer_waits
let pacer_wait_us t = t.pacer_wait_us

let pacer_hist t =
  List.sort
    (fun (a, _) (b, _) -> Stdlib.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pacer_hist [])

let state c = c.state
let fsm c = c.fsm
let established_witness c = Tcp_fsm.Packed.established c.fsm
let error c = c.error
let local_port c = c.local_port
let remote_addr c = (c.remote_ip, c.remote_port)
let mss c = c.mss
let srtt_us c = c.srtt_us
let rto c = c.rto
let cwnd c = Cong_control.cwnd c.cc
let bytes_queued c = sendq_length c.snd_buf
let bytes_available c = Bytequeue.length c.rcv_buf
let loaned_bytes c = c.loaned_bytes
let fast_path_counts c = (c.fast_acks, c.fast_data, c.slow_segments)

type conn_options = {
  co_snd_scale : int;
  co_rcv_scale : int;
  co_sack : bool;
  co_timestamps : bool;
  co_cong : string;
  co_unknown_opts : int;
  co_wnd_clamps : int;
  co_sack_rexmits : int;
  co_recovery_us : float list;
}

let conn_options c =
  { co_snd_scale = c.snd_scale;
    co_rcv_scale = c.rcv_scale;
    co_sack = c.sack_ok;
    co_timestamps = c.ts_ok;
    co_cong = Cong_control.name c.cc;
    co_unknown_opts = c.unknown_opts;
    co_wnd_clamps = c.wnd_clamps;
    co_sack_rexmits = c.sack_rexmits;
    co_recovery_us = c.rec_samples_us }

let key ~remote_ip ~remote_port ~local_port = (Ip.to_int32 remote_ip, remote_port, local_port)
let conn_key c = key ~remote_ip:c.remote_ip ~remote_port:c.remote_port ~local_port:c.local_port

(* --- wakeups ------------------------------------------------------- *)

let wake_all c =
  while not (Queue.is_empty c.waiters) do
    (Queue.pop c.waiters) ()
  done

let wait_on c = Sched.suspend (fun wake -> Queue.push wake c.waiters)

let on_closed c f = c.closed_callbacks <- f :: c.closed_callbacks

(* --- timers --------------------------------------------------------- *)

let stop_timer slot =
  match slot with
  | None -> None
  | Some h ->
      Timers.disarm h;
      None

let charge_timer_op c = Proto_env.charge c.engine.env c.engine.env.Proto_env.costs.Costs.timer_op

(* --- window computation --------------------------------------------- *)

(* Bytes loaned out to the application still occupy receive buffering
   (the pool buffer cannot be reused until returned), so outstanding
   loans shrink the advertised window: a slow application throttles its
   sender instead of starving the receive ring. *)
let rcv_window c =
  let used = Bytequeue.length c.rcv_buf + c.loaned_bytes in
  Stdlib.max 0 (c.engine.prm.Tcp_params.rcv_buf - used)

let snd_window c = Stdlib.min c.snd_wnd (Cong_control.cwnd c.cc)

(* The window a peer's segment grants us: scaled by the negotiated
   shift, except on SYN segments, which RFC 1323 keeps unscaled. *)
let seg_snd_wnd c (seg : Tcp_wire.segment) =
  if seg.Tcp_wire.flags.Tcp_wire.syn then seg.Tcp_wire.wnd
  else seg.Tcp_wire.wnd lsl c.snd_scale

(* How much of [wnd] the 16-bit field can advertise after scaling. *)
let advertisable c wnd =
  if c.rcv_scale > 0 then Stdlib.min (wnd lsr c.rcv_scale) 0xffff lsl c.rcv_scale
  else Stdlib.min wnd 0xffff

(* RFC 1323 timestamp clock: simulated milliseconds, mod 2^32. *)
let ts_now_ms c =
  int_of_float (Time.to_ms_f (Time.diff (Proto_env.now c.engine.env) Time.zero))
  land 0xFFFFFFFF

let now_us c = Time.to_us_f (Time.diff (Proto_env.now c.engine.env) Time.zero)

(* --- segment emission ----------------------------------------------- *)

let emit ?payload_sum ?(gso_size = 0) t ~src_ip ~dst_ip (seg : Tcp_wire.segment) =
  let costs = t.env.Proto_env.costs in
  let payload_bytes = Mbuf.length seg.Tcp_wire.payload in
  Proto_env.charge t.env costs.Costs.tcp_output;
  (* Payload bytes leave the send buffer through one of three passes:
     a checksum-only walk of the referenced iovec chain (zero-copy —
     nothing moves), one fused copy+checksum pass, or two separate
     passes (the unfused ablation).  The header is always a
     checksum-only pass. *)
  if t.prm.Tcp_params.zero_copy then
    Proto_env.charge_bytes ~kind:Cpu.Checksum t.env
      ~per_byte_ns:costs.Costs.checksum_per_byte_ns payload_bytes
  else if t.prm.Tcp_params.fused_checksum then
    Proto_env.charge_bytes ~kind:Cpu.Copy_checksum t.env
      ~per_byte_ns:costs.Costs.copy_checksum_per_byte_ns payload_bytes
  else begin
    Proto_env.charge_bytes ~kind:Cpu.Copy t.env ~per_byte_ns:costs.Costs.copy_per_byte_ns
      payload_bytes;
    Proto_env.charge_bytes ~kind:Cpu.Checksum t.env
      ~per_byte_ns:costs.Costs.checksum_per_byte_ns payload_bytes
  end;
  (* Header checksum pass.  The historical engine charged the bare
     20-byte header even on MSS-bearing SYNs; keep that for the legacy
     option shapes (<= 4 bytes) so the ablation baselines stay
     bit-identical, and charge the true header length once the modern
     options (timestamps, SACK blocks) make it grow. *)
  let opt_len = Tcp_wire.opts_length seg.Tcp_wire.opts in
  Proto_env.charge_bytes ~kind:Cpu.Checksum t.env
    ~per_byte_ns:costs.Costs.checksum_per_byte_ns
    (Tcp_wire.header_size + if opt_len > 4 then opt_len else 0);
  t.segments_out <- t.segments_out + 1;
  if gso_size > 0 then t.gso_sends <- t.gso_sends + 1;
  let m = Tcp_wire.encode ?payload_sum ~src_ip ~dst_ip seg in
  Ipv4.output t.ip ~proto:6 ~dst:dst_ip ~gso_size m

let send_rst_for t ~src ~(seg : Tcp_wire.segment) =
  if t.rst_on_unknown then begin
    t.rsts_out <- t.rsts_out + 1;
    let flags, seq, ack =
      if seg.Tcp_wire.flags.Tcp_wire.ack then
        ({ Tcp_wire.no_flags with Tcp_wire.rst = true }, seg.Tcp_wire.ack, 0)
      else
        ( { Tcp_wire.no_flags with Tcp_wire.rst = true; ack = true },
          0,
          Tcp_seq.add seg.Tcp_wire.seq (Tcp_wire.seg_len seg) )
    in
    emit t ~src_ip:(Ipv4.my_ip t.ip) ~dst_ip:src
      { Tcp_wire.src_port = seg.Tcp_wire.dst_port;
        dst_port = seg.Tcp_wire.src_port;
        seq;
        ack;
        flags;
        wnd = 0;
        opts = Tcp_wire.no_opts;
        payload = Mbuf.empty }
  end

(* Smallest shift that fits the receive buffer into the 16-bit field. *)
let scale_for buf =
  let rec go s = if s >= 14 || buf lsr s <= 0xffff then s else go (s + 1) in
  go 0

(* The out-of-order queue as merged [left, right) sequence ranges — the
   candidate SACK blocks. *)
let oo_ranges c =
  let rec merge = function
    | (s1, e1) :: ((s2, e2) :: rest as tl) ->
        if Tcp_seq.ge e1 s2 then merge ((s1, Tcp_seq.max e1 e2) :: rest)
        else (s1, e1) :: merge tl
    | l -> l
  in
  merge (List.map (fun (s, d) -> (s, Tcp_seq.add s (View.length d))) c.ooseg)

(* Handshake-segment options.  Constructing them requires the FSM's
   option permit: outside Listen/Syn_sent/Syn_received the witness
   yields none and the segment carries only the classic MSS.  A SYN
   carries our offers (from Tcp_params); a SYN-ACK echoes exactly what
   negotiation accepted. *)
let syn_opts c ~syn_ack =
  match Tcp_fsm.Packed.option_permit c.fsm with
  | None -> Tcp_wire.opts_mss c.mss
  | Some _ ->
      let prm = c.engine.prm in
      if syn_ack then
        { Tcp_wire.no_opts with
          Tcp_wire.mss = Some c.mss;
          wscale = (if c.ws_ok then Some c.rcv_scale else None);
          sack_ok = c.sack_ok;
          ts = (if c.ts_ok then Some (ts_now_ms c, c.ts_recent) else None) }
      else
        { Tcp_wire.no_opts with
          Tcp_wire.mss = Some c.mss;
          wscale =
            (if prm.Tcp_params.window_scale then
               Some (scale_for prm.Tcp_params.rcv_buf)
             else None);
          sack_ok = prm.Tcp_params.sack;
          ts = (if prm.Tcp_params.timestamps then Some (ts_now_ms c, c.ts_recent) else None) }

(* Commit to the peer's SYN/SYN-ACK offers.  Gated by the same FSM
   permit: an option offer arriving outside the handshake states cannot
   change a connection's negotiated state. *)
let negotiate_options c (peer : Tcp_wire.opts) =
  match Tcp_fsm.Packed.option_permit c.fsm with
  | None -> ()
  | Some _ ->
      let prm = c.engine.prm in
      (match peer.Tcp_wire.wscale with
      | Some s when prm.Tcp_params.window_scale ->
          c.ws_ok <- true;
          c.snd_scale <- Stdlib.min s 14;
          c.rcv_scale <- scale_for prm.Tcp_params.rcv_buf;
          (* The 64KB cwnd clamp was an artifact of the 16-bit window;
             with scaling in effect the send buffer is the cap. *)
          Cong_control.set_max_cwnd c.cc (Stdlib.max prm.Tcp_params.snd_buf 65535)
      | _ -> ());
      if peer.Tcp_wire.sack_ok && prm.Tcp_params.sack then c.sack_ok <- true;
      (match peer.Tcp_wire.ts with
      | Some (tsval, _) when prm.Tcp_params.timestamps ->
          c.ts_ok <- true;
          c.ts_recent <- tsval
      | _ -> ())

(* Send one segment of this connection.  [seq] is explicit so fast
   retransmit can resend at snd_una without disturbing snd_nxt. *)
let send_segment ?payload_sum ?gso_size c ~seq ~flags ~payload ~with_mss =
  let t = c.engine in
  let wnd = rcv_window c in
  let scaled = c.rcv_scale > 0 && not flags.Tcp_wire.syn in
  let wire_wnd =
    if scaled then Stdlib.min (wnd lsr c.rcv_scale) 0xffff
    else begin
      (* Unscaled connections cannot advertise past 64KB; make the
         clamp observable instead of silent. *)
      if wnd > 0xffff then c.wnd_clamps <- c.wnd_clamps + 1;
      Stdlib.min wnd 0xffff
    end
  in
  let adv = if scaled then wire_wnd lsl c.rcv_scale else wire_wnd in
  c.rcv_adv <- Tcp_seq.max c.rcv_adv (Tcp_seq.add c.rcv_nxt adv);
  c.unacked_segs <- 0;
  c.ack_now <- false;
  c.delack <- stop_timer c.delack;
  c.last_emit <- Proto_env.now t.env;
  let opts =
    if with_mss then syn_opts c ~syn_ack:flags.Tcp_wire.ack
    else begin
      let sack =
        if c.sack_ok && c.ooseg <> [] then
          Sack.select_blocks ~recent:c.recent_oo ~limit:3 (oo_ranges c)
        else []
      in
      let ts = if c.ts_ok then Some (ts_now_ms c, c.ts_recent) else None in
      if sack = [] && ts = None then Tcp_wire.no_opts
      else { Tcp_wire.no_opts with Tcp_wire.sack; ts }
    end
  in
  emit ?payload_sum ?gso_size t ~src_ip:(Ipv4.my_ip t.ip) ~dst_ip:c.remote_ip
    { Tcp_wire.src_port = c.local_port;
      dst_port = c.remote_port;
      seq;
      ack = c.rcv_nxt;
      flags;
      wnd = wire_wnd;
      opts;
      payload }

let flags_ack = { Tcp_wire.no_flags with Tcp_wire.ack = true }
let flags_syn = { Tcp_wire.no_flags with Tcp_wire.syn = true }
let flags_syn_ack = { Tcp_wire.no_flags with Tcp_wire.syn = true; ack = true }

(* --- loss-recovery accounting ----------------------------------------- *)

(* A recovery episode runs from loss detection (fast retransmit or RTO)
   until the cumulative ACK passes the send frontier at detection; the
   elapsed time is the bench's recovery-time sample. *)
let start_recovery c =
  if c.rec_start = None then begin
    c.rec_start <- Some (Proto_env.now c.engine.env);
    c.rec_point <- c.snd_max
  end

(* SACK-based hole retransmission (RFC 6675 flavour): walk the unSACKed
   gaps below the highest SACKed edge, resending one MSS at a time while
   the estimated pipe (bytes still in the network) is below cwnd.  The
   cursor makes each hole eligible once per ACK event, so several
   distinct holes can be repaired within a single RTT.  Returns true if
   anything went out. *)
let sack_retransmit c =
  match Sack.highest c.sb with
  | None -> false
  | Some high ->
      let upto = Tcp_seq.min high c.snd_nxt in
      if Tcp_seq.lt c.sack_cursor c.snd_una then c.sack_cursor <- c.snd_una;
      let sent = ref 0 in
      let stop = ref false in
      while not !stop do
        let pipe =
          Tcp_seq.diff c.snd_nxt c.snd_una - Sack.sacked_bytes c.sb + !sent
        in
        if pipe >= Cong_control.cwnd c.cc then stop := true
        else
          match Sack.next_hole c.sb ~from:c.sack_cursor ~upto with
          | None -> stop := true
          (* RFC 6675 IsLost: the hole only counts as lost — rather than
             still in flight between two freshly SACKed neighbours —
             once three segments' worth of data beyond it has been
             SACKed.  The evidence is monotone in the hole's position,
             so the first ineligible hole ends the walk. *)
          | Some (l, _) when Sack.sacked_above c.sb l < 3 * c.mss -> stop := true
          | Some (l, r) ->
              let off = Tcp_seq.diff l c.snd_una in
              let len = Stdlib.min c.mss (Tcp_seq.diff r l) in
              let len = Stdlib.min len (sendq_length c.snd_buf - off) in
              if off < 0 || len <= 0 then stop := true
              else begin
                c.engine.retransmissions <- c.engine.retransmissions + 1;
                c.sack_rexmits <- c.sack_rexmits + 1;
                c.rtt_timing <- None;
                send_segment c ~seq:l ~flags:flags_ack
                  ~payload:(sendq_peek c.snd_buf ~off ~len)
                  ~with_mss:false;
                c.sack_cursor <- Tcp_seq.add l len;
                sent := !sent + len
              end
      done;
      !sent > 0

(* --- connection teardown -------------------------------------------- *)

let remove_conn c =
  Hashtbl.remove c.engine.pcbs (conn_key c)

(* Every state change goes through a typed witness: assert the shadow
   oracle, apply the transition to the packed witness, and move the
   untyped field to the witness's new shadow.  No [c.state <- ...]
   exists outside this helper and [destroy]. *)
let transition c tr =
  Tcp_fsm.Packed.check_shadow c.fsm c.state;
  c.fsm <- Tcp_fsm.Packed.apply c.fsm tr;
  c.state <- Tcp_fsm.target tr

let destroy c reason =
  c.rexmt <- stop_timer c.rexmt;
  c.persist <- stop_timer c.persist;
  c.delack <- stop_timer c.delack;
  c.time_wait <- stop_timer c.time_wait;
  c.keepalive <- stop_timer c.keepalive;
  c.pacer <- stop_timer c.pacer;
  if c.state <> State.Closed then begin
    (* Retire through the matching edge to the terminal state: clean
       teardown (no error) takes the close/expire/fin-acked edges, an
       errored one the abort edges. *)
    Tcp_fsm.Packed.check_shadow c.fsm c.state;
    c.fsm <- Tcp_fsm.Packed.retire c.fsm ~clean:(reason = None);
    c.state <- State.Closed;
    c.error <- (match c.error with None -> reason | some -> some);
    remove_conn c;
    (* Fire any pending zero-copy releases: buffers queued but never
       acknowledged go back to their pool with the connection. *)
    sendq_clear c.snd_buf;
    wake_all c;
    List.iter (fun f -> f ()) (List.rev c.closed_callbacks)
  end

let trace c fmt =
  Uln_engine.Trace.debugf c.engine.env.Proto_env.sched "tcp"
    ("[:%d<->%d] " ^^ fmt) c.local_port c.remote_port

let drop_with_error c msg =
  trace c "dropped: %s" msg;
  destroy c (Some msg)

let finish_cleanly c =
  trace c "closed";
  destroy c None

(* --- RTT estimation (Jacobson) --------------------------------------- *)

let update_rtt c sample_us =
  let prm = c.engine.prm in
  (* The pacer's rate base: the smallest RTT ever observed.  The
     smoothed estimate tracks queueing delay, and pacing from it is a
     positive feedback loop — queues inflate srtt, the pacer slows
     down, releases bunch behind the timer, queues grow.  The minimum
     is the propagation floor the queue sits on. *)
  if c.rtt_min_us = 0. || sample_us < c.rtt_min_us then c.rtt_min_us <- sample_us;
  if c.srtt_us = 0. then begin
    c.srtt_us <- sample_us;
    c.rttvar_us <- sample_us /. 2.
  end
  else begin
    let err = sample_us -. c.srtt_us in
    c.srtt_us <- c.srtt_us +. (err /. 8.);
    c.rttvar_us <- c.rttvar_us +. ((Float.abs err -. c.rttvar_us) /. 4.)
  end;
  let rto_us = c.srtt_us +. (4. *. c.rttvar_us) in
  let rto = Time.of_us_f rto_us in
  c.rto <-
    Stdlib.max prm.Tcp_params.min_rto (Stdlib.min prm.Tcp_params.max_rto rto);
  c.backoff <- 0

(* --- output engine --------------------------------------------------- *)

let rec arm_rexmt c =
  match c.rexmt with
  | Some _ -> ()
  | None ->
      charge_timer_op c;
      let delay = Time.span_scale c.rto (1 lsl Stdlib.min c.backoff 6) in
      let delay = Stdlib.min delay c.engine.prm.Tcp_params.max_rto in
      (* The handler runs in its own thread; by then the connection may
         have restarted the timer (the ACK arrived between fire and
         run).  Act only if this handle is still the current one. *)
      let mine = ref None in
      let h =
        Timers.arm c.engine.env.Proto_env.timers delay (fun () ->
            Proto_env.spawn_handler c.engine.env ~name:"tcp.rexmt" (fun () ->
                match (c.rexmt, !mine) with
                | Some cur, Some this when cur == this ->
                    c.rexmt <- None;
                    rexmt_fired c
                | _ -> ()))
      in
      mine := Some h;
      c.rexmt <- Some h

and rexmt_fired c =
  if c.state <> State.Closed && not c.detached then begin
    let t = c.engine in
    c.backoff <- c.backoff + 1;
    if c.backoff > t.prm.Tcp_params.max_backoff then drop_with_error c "connection timed out"
    else begin
      t.retransmissions <- t.retransmissions + 1;
      trace c "retransmission timeout (backoff %d, state %s)" c.backoff
        (State.to_string c.state);
      (* Karn: stop timing across retransmissions. *)
      c.rtt_timing <- None;
      c.dupacks <- 0;
      (match c.state with
      | State.Syn_sent ->
          arm_rexmt c;
          send_segment c ~seq:c.iss ~flags:flags_syn ~payload:Mbuf.empty ~with_mss:true
      | State.Syn_received ->
          arm_rexmt c;
          send_segment c ~seq:c.iss ~flags:flags_syn_ack ~payload:Mbuf.empty ~with_mss:true
      | _ ->
          (* Congestion collapse response: shrink and go back to snd_una. *)
          let flight = Stdlib.min (snd_window c) (Tcp_seq.diff c.snd_nxt c.snd_una) in
          Cong_control.on_rto c.cc ~flight;
          (* Reneging safety (RFC 2018 §8): the peer may discard data it
             SACKed, so after a timeout the scoreboard is forgotten and
             everything from snd_una is eligible again. *)
          Sack.clear c.sb;
          c.sack_cursor <- c.snd_una;
          if Tcp_seq.gt c.snd_nxt c.snd_una then start_recovery c;
          c.snd_nxt <- c.snd_una;
          c.fin_sent <- false;
          output c)
    end
  end

and output c =
  if c.output_active then c.output_pending <- true
  else begin
    c.output_active <- true;
    let continue = ref true in
    while !continue do
      c.output_pending <- false;
      let sent = output_once c in
      if not sent && not c.output_pending then continue := false
    done;
    c.output_active <- false
  end

(* Try to emit one segment; true if something was sent. *)
and output_once c =
  if c.detached || c.state = State.Closed then false
  else begin
    let prm = c.engine.prm in
    let off = Tcp_seq.diff c.snd_nxt c.snd_una in
    (* [off] counts the unacked FIN if one is in flight; data offset
       never exceeds the buffer. *)
    let data_off = Stdlib.min (Stdlib.max 0 off) (sendq_length c.snd_buf) in
    let avail = sendq_length c.snd_buf - data_off in
    (* Congestion-window validation: nothing in flight and no segment
       sent for over an RTO means the ACK clock is dead — restart from
       the initial window (no-op under the Reno oracle). *)
    if
      off = 0 && avail > 0
      && Time.diff (Proto_env.now c.engine.env) c.last_emit > c.rto
    then Cong_control.on_idle c.cc;
    let wnd = snd_window c in
    let usable = Stdlib.max 0 (wnd - off) in
    (* Transmit segmentation offload: at the send frontier one
       oversized logical segment covers as many whole MSS units as the
       window allows; the NIC cuts the wire frames ({!Uln_net.Txq}).
       Any sub-MSS tail is left for the next pass, so Nagle and FIN/PSH
       placement behave exactly as on the per-segment path, and a
       rewound snd_nxt (retransmission) always goes per-MSS. *)
    let at_frontier = Tcp_seq.ge c.snd_nxt c.snd_max in
    let seg_cap =
      if prm.Tcp_params.tx_gso && at_frontier && usable >= 2 * c.mss then begin
        (* The offload packet is still one IP datagram: its headers
           bound the payload to the 16-bit total-length field.  It is
           further sized to the peer's ACK cadence (one episode, one
           ACK): frames past the cadence would sit in the peer's
           delayed-ACK timer, stalling the window a full delack period
           every round trip. *)
        let cap =
          Stdlib.min prm.Tcp_params.gso_max
            (0xffff - Ipv4.header_size - Tcp_wire.header_size)
        in
        let cap = Stdlib.min cap (Stdlib.max 2 prm.Tcp_params.ack_every * c.mss) in
        Stdlib.max c.mss (Stdlib.min cap usable / c.mss * c.mss)
      end
      else c.mss
    in
    let len = Stdlib.min (Stdlib.min seg_cap avail) usable in
    let len = if len > c.mss then len / c.mss * c.mss else len in
    (* New data needs a send permit from the witness (Established or
       half-closed Close_wait); buffered data drains alongside a queued
       FIN regardless.  proto-check pins the permit row to
       [State.can_send_data]. *)
    let data_allowed = Tcp_fsm.Packed.send_permit c.fsm <> None || c.fin_queued in
    let len = if data_allowed then len else 0 in
    let all_data_sent = data_off + len >= sendq_length c.snd_buf in
    let want_fin =
      (* Also resend from FIN-bearing states: after a retransmit timeout
         snd_nxt returns to snd_una with fin_sent cleared, but the state
         has already advanced. *)
      c.fin_queued && not c.fin_sent && all_data_sent
      && (match c.state with
         | State.Established | State.Close_wait | State.Syn_received | State.Fin_wait_1
         | State.Closing | State.Last_ack ->
             true
         | _ -> false)
      && usable - len > 0
    in
    let nagle_blocks =
      len > 0 && len < c.mss && off > 0 && prm.Tcp_params.nagle && not want_fin
      && avail - len = 0
    in
    (* Software pacing: frontier data may leave no earlier than
       [pace_next] (advanced at the cwnd/srtt rate on each send).
       Retransmissions and pure ACKs are never delayed.  When blocked,
       one pacer shot on the timer wheel re-runs the output engine. *)
    let pace_blocked =
      len > 0 && not nagle_blocks && not want_fin && prm.Tcp_params.pacing
      && at_frontier && c.rtt_min_us > 0.
      && Time.( < ) (Proto_env.now c.engine.env) c.pace_next
    in
    if pace_blocked && c.pacer = None then begin
      let t = c.engine in
      Proto_env.charge t.env t.env.Proto_env.costs.Costs.pacer_sched;
      let delay = Time.diff c.pace_next (Proto_env.now t.env) in
      let us = Time.to_us_f delay in
      t.pacer_waits <- t.pacer_waits + 1;
      t.pacer_wait_us <- t.pacer_wait_us +. us;
      let bucket =
        let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
        go 0 (Stdlib.max 1 (int_of_float us))
      in
      Hashtbl.replace t.pacer_hist bucket
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.pacer_hist bucket));
      c.pacer <-
        Some
          (Timers.arm t.env.Proto_env.timers delay (fun () ->
               c.pacer <- None;
               if c.state <> State.Closed && not c.detached then
                 Proto_env.spawn_handler t.env ~name:"tcp.pacer" (fun () -> output c)))
    end;
    let send_data = len > 0 && not nagle_blocks && not pace_blocked in
    if send_data || want_fin || c.ack_now then begin
      let payload, payload_sum =
        if send_data then
          if prm.Tcp_params.fused_checksum then begin
            (* One pass: copy out of the send buffer (or, zero-copy,
               walk the referenced chain) accumulating the checksum in
               the same loop; encode completes it from the header
               without re-reading the payload. *)
            let m, sum = sendq_peek_sum c.snd_buf ~off:data_off ~len in
            (m, Some sum)
          end
          else (sendq_peek c.snd_buf ~off:data_off ~len, None)
        else (Mbuf.empty, None)
      in
      let len = if send_data then len else 0 in
      let fin_now = want_fin && (send_data || len = 0) in
      let flags =
        { Tcp_wire.no_flags with
          Tcp_wire.ack = true;
          fin = fin_now;
          psh = (send_data && data_off + len >= sendq_length c.snd_buf) }
      in
      let seq = c.snd_nxt in
      (* Time this segment if it is new data at the send frontier. *)
      if send_data && c.rtt_timing = None && Tcp_seq.ge seq c.snd_max then
        c.rtt_timing <- Some (seq, Proto_env.now c.engine.env);
      if Tcp_seq.lt seq c.snd_max && send_data then
        c.engine.retransmissions <- c.engine.retransmissions + 1;
      c.snd_nxt <- Tcp_seq.add c.snd_nxt (len + if fin_now then 1 else 0);
      c.snd_max <- Tcp_seq.max c.snd_max c.snd_nxt;
      if fin_now then begin
        c.fin_sent <- true;
        match c.state with
        | State.Established -> transition c Tcp_fsm.Send_fin_established
        | State.Syn_received -> transition c Tcp_fsm.Send_fin_syn_received
        | State.Close_wait -> transition c Tcp_fsm.Send_fin_close_wait
        | _ -> () (* FIN resend after a retransmit timeout: state already advanced *)
      end;
      if send_data || fin_now then arm_rexmt c;
      let gso_size = if send_data && len > c.mss then c.mss else 0 in
      if send_data && prm.Tcp_params.tx_gso && gso_size = 0 then
        c.engine.gso_fallbacks <- c.engine.gso_fallbacks + 1;
      send_segment ?payload_sum ~gso_size c ~seq ~flags ~payload ~with_mss:false;
      (* Advance the pacing horizon by this send's serialization time
         at twice the cwnd-per-minRTT rate.  The factor of two is the
         usual slow-start headroom, so the pacer spreads bursts without
         ever becoming the flow's rate limiter; the minimum RTT (never
         the smoothed one, which tracks queueing delay and delayed-ACK
         artifacts) keeps the feedback negative.  Each advance is still
         capped — one early minimum taken through a delack wait could
         otherwise stall the flow for tens of milliseconds. *)
      if send_data && prm.Tcp_params.pacing && c.rtt_min_us > 0. then begin
        let cw = Stdlib.max c.mss (Cong_control.cwnd c.cc) in
        let gap_us =
          Stdlib.min pace_max_gap_us
            (float_of_int len *. c.rtt_min_us /. (2. *. float_of_int cw))
        in
        let now = Proto_env.now c.engine.env in
        c.pace_next <- Time.add (Time.max now c.pace_next) (Time.of_us_f gap_us)
      end;
      true
    end
    else begin
      (* Nothing sendable: maybe start the persist probe.  A pending FIN
         with a closed window also needs probing or it would never go
         out. *)
      if
        (sendq_length c.snd_buf > 0 || (c.fin_queued && not c.fin_sent))
        && c.snd_wnd = 0 && c.rexmt = None
        && c.persist = None
        && State.synchronized c.state
      then arm_persist c;
      false
    end
  end

and arm_persist c =
  charge_timer_op c;
  let delay = Time.span_scale c.rto (1 lsl Stdlib.min c.backoff 4) in
  c.persist <-
    Some
      (Timers.arm c.engine.env.Proto_env.timers delay (fun () ->
           c.persist <- None;
           Proto_env.spawn_handler c.engine.env ~name:"tcp.persist" (fun () ->
               persist_fired c)))

and persist_fired c =
  if c.state <> State.Closed && not c.detached && c.snd_wnd = 0 then begin
    if sendq_length c.snd_buf > 0 then begin
      (* Window probe: one byte at snd_una. *)
      let payload = sendq_peek c.snd_buf ~off:0 ~len:1 in
      c.backoff <- Stdlib.min (c.backoff + 1) 10;
      send_segment c ~seq:c.snd_una ~flags:flags_ack ~payload ~with_mss:false;
      arm_persist c
    end
    else if c.fin_queued && not c.fin_sent then begin
      (* Force the FIN out as the probe. *)
      c.backoff <- Stdlib.min (c.backoff + 1) 10;
      let seq = c.snd_nxt in
      c.snd_nxt <- Tcp_seq.add c.snd_nxt 1;
      c.snd_max <- Tcp_seq.max c.snd_max c.snd_nxt;
      c.fin_sent <- true;
      (match c.state with
      | State.Established -> transition c Tcp_fsm.Send_fin_established
      | State.Syn_received -> transition c Tcp_fsm.Send_fin_syn_received
      | State.Close_wait -> transition c Tcp_fsm.Send_fin_close_wait
      | _ -> () (* FIN resend after a retransmit timeout: state already advanced *));
      arm_rexmt c;
      send_segment c ~seq
        ~flags:{ Tcp_wire.no_flags with Tcp_wire.ack = true; fin = true }
        ~payload:Mbuf.empty ~with_mss:false
    end
  end

(* --- delayed ACK ------------------------------------------------------ *)

let schedule_ack c =
  (* A merged run counts as the number of original segments it carries:
     the ACK cadence is computed over wire arrivals, not library calls.
     Outside a flush [gro_segs] is 1 and this is the classic path. *)
  let k = c.engine.gro_segs in
  c.unacked_segs <- c.unacked_segs + k;
  if c.unacked_segs >= c.engine.prm.Tcp_params.ack_every then begin
    (* One ACK answers the whole run; per-packet arrival would have
       acknowledged every [ack_every]th segment.  The difference is the
       burst_ack saving (zero when the merge is cadence-capped). *)
    if k > 1 then
      c.engine.acks_elided <-
        c.engine.acks_elided
        + Stdlib.max 0 ((c.unacked_segs / c.engine.prm.Tcp_params.ack_every) - 1);
    c.ack_now <- true
  end
  else if c.delack = None then begin
    charge_timer_op c;
    c.delack <-
      Some
        (Timers.arm c.engine.env.Proto_env.timers c.engine.prm.Tcp_params.delack (fun () ->
             c.delack <- None;
             if c.state <> State.Closed && not c.detached then begin
               c.ack_now <- true;
               Proto_env.spawn_handler c.engine.env ~name:"tcp.delack" (fun () -> output c)
             end))
  end

(* --- keepalive --------------------------------------------------------- *)

(* BSD-style keepalive: once the connection has been idle for the
   configured time, probe with a segment one byte below snd_una (the
   peer must answer with an ACK); unanswered probes eventually drop the
   connection. *)
let rec arm_keepalive c =
  match c.engine.prm.Tcp_params.keepalive with
  | None -> ()
  | Some idle_limit ->
      if c.keepalive = None then begin
        let delay =
          if c.ka_probes = 0 then idle_limit else c.engine.prm.Tcp_params.keepalive_interval
        in
        c.keepalive <-
          Some
            (Timers.arm c.engine.env.Proto_env.timers delay (fun () ->
                 c.keepalive <- None;
                 Proto_env.spawn_handler c.engine.env ~name:"tcp.keepalive" (fun () ->
                     keepalive_fired c)))
      end

and keepalive_fired c =
  match c.engine.prm.Tcp_params.keepalive with
  | None -> ()
  | Some idle_limit ->
      if c.state = State.Established || c.state = State.Close_wait then begin
        let idle = Time.diff (Proto_env.now c.engine.env) c.idle_since in
        if idle < idle_limit && c.ka_probes = 0 then arm_keepalive c
        else if c.ka_probes >= c.engine.prm.Tcp_params.keepalive_probes then
          drop_with_error c "keepalive timeout"
        else begin
          c.ka_probes <- c.ka_probes + 1;
          send_segment c
            ~seq:(Tcp_seq.add c.snd_una (-1))
            ~flags:flags_ack ~payload:Mbuf.empty ~with_mss:false;
          arm_keepalive c
        end
      end

let touch_keepalive c =
  c.idle_since <- Proto_env.now c.engine.env;
  c.ka_probes <- 0

(* --- TIME_WAIT -------------------------------------------------------- *)

(* Callers take the witness transition into TIME_WAIT first; this only
   arranges the 2MSL machinery. *)
let enter_time_wait c =
  trace c "entering TIME_WAIT";
  Tcp_fsm.Packed.check_shadow c.fsm c.state;
  if c.state <> State.Time_wait then invalid_arg "Tcp.enter_time_wait: not in TIME_WAIT";
  c.rexmt <- stop_timer c.rexmt;
  c.persist <- stop_timer c.persist;
  let claimed =
    (* A claimant (the registry's TIME_WAIT wheel) takes over the 2MSL
       residue: it holds the port and a filter for the quiet period, so
       the engine can retire the control block immediately instead of
       keeping it alive on a per-connection timer. *)
    c.time_wait = None
    && (match c.engine.time_wait_hook with Some hook -> hook c | None -> false)
  in
  if claimed then begin
    (* Flush the final ACK of the peer's FIN before the control block
       can be retired: a claimant frees the connection's resources (a
       leased channel goes back to its cache), so anything still
       pending when the spawned cleanup runs would be lost and the
       peer would retransmit its FIN out of LAST_ACK forever. *)
    if c.ack_now then output c;
    Proto_env.spawn_handler c.engine.env ~name:"tcp.2msl" (fun () -> finish_cleanly c)
  end
  else if c.time_wait = None then
    c.time_wait <-
      Some
        (Timers.arm c.engine.env.Proto_env.timers
           (Time.span_scale c.engine.prm.Tcp_params.msl 2) (fun () ->
             c.time_wait <- None;
             (* Closed-callbacks may block (e.g. releasing the port with
                the registry), so run them in a thread. *)
             Proto_env.spawn_handler c.engine.env ~name:"tcp.2msl" (fun () ->
                 finish_cleanly c)));
  wake_all c

(* --- out-of-order queue ----------------------------------------------- *)

let insert_ooseg c seq data =
  let rec ins = function
    | [] -> [ (seq, data) ]
    | (s, d) :: rest as l ->
        if Tcp_seq.lt seq s then (seq, data) :: l
        else if seq = s then l (* duplicate *)
        else (s, d) :: ins rest
  in
  c.ooseg <- ins c.ooseg;
  (* RFC 2018 §4: the block covering the newest arrival leads the SACK
     option on the next ACK. *)
  c.recent_oo <- Some seq

(* Pull any now-in-order segments into the receive buffer. *)
let drain_ooseg c =
  let rec go () =
    match c.ooseg with
    | (s, d) :: rest when Tcp_seq.le s c.rcv_nxt ->
        let skip = Tcp_seq.diff c.rcv_nxt s in
        let len = View.length d in
        if skip < len then begin
          Bytequeue.push c.rcv_buf (View.sub d skip (len - skip));
          c.rcv_nxt <- Tcp_seq.add s len
        end;
        c.ooseg <- rest;
        go ()
    | _ -> ()
  in
  go ();
  if c.ooseg = [] then c.recent_oo <- None

(* --- ACK processing --------------------------------------------------- *)

(* Retransmit at snd_una, the pre-SACK loss repair shared by fast
   retransmit and the NewReno partial-ACK rule. *)
let retransmit_una c =
  let len = Stdlib.min c.mss (sendq_length c.snd_buf) in
  if len > 0 then begin
    c.engine.retransmissions <- c.engine.retransmissions + 1;
    c.rtt_timing <- None;
    send_segment c ~seq:c.snd_una ~flags:flags_ack
      ~payload:(sendq_peek c.snd_buf ~off:0 ~len)
      ~with_mss:false;
    (* The head hole is now repaired-in-flight: move the scoreboard
       cursor past it so a later (pipe-unblocked) walk does not resend
       the same bytes within the episode. *)
    let high = Tcp_seq.add c.snd_una len in
    if Tcp_seq.lt c.sack_cursor high then c.sack_cursor <- high
  end

let process_ack c (seg : Tcp_wire.segment) =
  let ack = seg.Tcp_wire.ack in
  (* Fold any SACK blocks into the scoreboard first: duplicate and
     advancing ACKs both carry them. *)
  if c.sack_ok && seg.Tcp_wire.opts.Tcp_wire.sack <> [] then begin
    Sack.add c.sb ~una:c.snd_una seg.Tcp_wire.opts.Tcp_wire.sack;
    Cong_control.on_sack c.cc
  end;
  if Tcp_seq.gt ack c.snd_max then begin
    (* Acknowledges data we never sent. *)
    c.ack_now <- true
  end
  else if Tcp_seq.le ack c.snd_una then begin
    (* Duplicate ACK. *)
    if
      Mbuf.length seg.Tcp_wire.payload = 0
      && seg_snd_wnd c seg = c.snd_wnd
      && Tcp_seq.gt c.snd_nxt c.snd_una
    then begin
      c.dupacks <- c.dupacks + 1;
      let flight = Stdlib.min (snd_window c) (Tcp_seq.diff c.snd_nxt c.snd_una) in
      let do_rexmit =
        Cong_control.on_dupack c.cc ~count:c.dupacks ~flight ~snd_max:c.snd_max
      in
      if do_rexmit then begin
        trace c "fast retransmit at %d" c.snd_una;
        start_recovery c;
        (* With a scoreboard, repair the known holes pipe-limited;
           otherwise the classic resend of the first unacked segment. *)
        if not (c.sack_ok && sack_retransmit c) then retransmit_una c
      end
      else if c.sack_ok && c.dupacks > 3 then
        (* Later dupacks refresh the scoreboard: keep filling holes. *)
        ignore (sack_retransmit c)
    end
  end
  else begin
    (* New data acknowledged. *)
    let acked = Tcp_seq.diff ack c.snd_una in
    (* RTT sample.  A timestamp echo measures every ACK (including ones
       for retransmitted data — the echoed value is ours); without
       timestamps, the single-timer scheme under Karn's rule. *)
    (match seg.Tcp_wire.opts.Tcp_wire.ts with
    | Some (_, tsecr) when c.ts_ok && tsecr <> 0 ->
        c.rtt_timing <- None;
        let sample_ms = (ts_now_ms c - tsecr) land 0xFFFFFFFF in
        if sample_ms < 0x80000000 then update_rtt c (float_of_int sample_ms *. 1000.)
    | _ -> (
        match c.rtt_timing with
        | Some (tseq, started) when Tcp_seq.gt ack tseq ->
            c.rtt_timing <- None;
            update_rtt c (Time.to_us_f (Time.diff (Proto_env.now c.engine.env) started))
        | _ -> ()));
    (* Congestion window growth (and the NewReno partial-ACK verdict). *)
    let flight = Stdlib.min (snd_window c) (Tcp_seq.diff c.snd_nxt c.snd_una) in
    let rexmit_hole =
      Cong_control.on_ack c.cc ~ack ~acked ~dupacks:c.dupacks ~flight ~now_us:(now_us c)
    in
    c.dupacks <- 0;
    (* Remove acknowledged bytes; the FIN consumes one unit of sequence
       space that is not in the buffer. *)
    let fin_acked =
      c.fin_sent && Tcp_seq.ge ack c.snd_nxt && Tcp_seq.diff c.snd_nxt c.snd_una > 0
      && acked > sendq_length c.snd_buf
    in
    let data_acked = Stdlib.min (acked - (if fin_acked then 1 else 0)) (sendq_length c.snd_buf) in
    (* Transmit completion coalescing, TCP side: the zero-copy releases
       this ACK retires fire as one batch after the drop completes,
       instead of interleaved slot-by-slot (each still exactly once). *)
    if data_acked > 0 then begin
      if c.engine.prm.Tcp_params.tx_complete_coalesce then begin
        let batch = ref [] in
        sendq_drop ~sink:(fun f -> batch := f :: !batch) c.snd_buf data_acked;
        match !batch with
        | [] -> ()
        | fs ->
            c.engine.tx_release_batches <- c.engine.tx_release_batches + 1;
            c.engine.tx_releases <- c.engine.tx_releases + List.length fs;
            List.iter (fun f -> f ()) (List.rev fs)
      end
      else sendq_drop c.snd_buf data_acked
    end;
    c.snd_una <- ack;
    if Tcp_seq.gt c.snd_una c.snd_nxt then c.snd_nxt <- c.snd_una;
    Sack.forward c.sb ~una:c.snd_una;
    (* Recovery episode ends when the ACK passes the frontier recorded
       at loss detection.  Only then does the hole cursor rewind: each
       hole is scoreboard-retransmitted at most once per episode (the
       cursor is the watermark), and a retransmission that was itself
       lost is rescued by the retransmit timer, not by resending while
       the first repair is still in flight. *)
    (match c.rec_start with
    | Some t0 when Tcp_seq.ge ack c.rec_point ->
        c.rec_samples_us <-
          Time.to_us_f (Time.diff (Proto_env.now c.engine.env) t0) :: c.rec_samples_us;
        c.rec_start <- None;
        c.sack_cursor <- c.snd_una
    | _ -> ());
    (* Retransmit timer: restart while data remains outstanding. *)
    c.rexmt <- stop_timer c.rexmt;
    c.backoff <- 0;
    if Tcp_seq.gt c.snd_nxt c.snd_una then arm_rexmt c;
    (* NewReno partial ACK: another segment of the same loss window is
       missing — repair it now rather than waiting for three more
       dupacks (or the timer). *)
    if rexmit_hole then
      if not (c.sack_ok && sack_retransmit c) then retransmit_una c;
    (* State transitions on FIN acknowledgement. *)
    if fin_acked then begin
      match c.state with
      | State.Fin_wait_1 -> transition c Tcp_fsm.Fin_acked_fin_wait_1
      | State.Closing ->
          transition c Tcp_fsm.Fin_acked_closing;
          enter_time_wait c
      | State.Last_ack -> finish_cleanly c (* retires through Fin_acked_last_ack *)
      | _ -> ()
    end;
    wake_all c
  end

(* --- header prediction (Van Jacobson fast path) ----------------------- *)

(* The common case in ESTABLISHED: exactly the next expected in-order
   segment — no flags beyond ACK(+PSH), sequence number equal to
   rcv_nxt, no window change, in-order queue empty, and any payload
   fitting the receive window whole.  Under these guards the general
   input path below provably reduces to: process the ACK, take the
   (trivially satisfied) wl1/wl2 window-update branch, append the
   payload at rcv_nxt, and call the output engine.  Executing only that
   skips the RFC 793 acceptability test, the flag dispatch, payload
   trimming/clipping and the FIN logic; the slow path is kept intact as
   the differential-testing oracle (Tcp_params.header_prediction). *)
let try_fast_path c (seg : Tcp_wire.segment) =
  let f = seg.Tcp_wire.flags in
  let eligible =
    c.engine.prm.Tcp_params.header_prediction
    && c.state = State.Established
    && f.Tcp_wire.ack
    && (not f.Tcp_wire.syn)
    && (not f.Tcp_wire.rst)
    && (not f.Tcp_wire.fin)
    && seg.Tcp_wire.seq = c.rcv_nxt
    && seg_snd_wnd c seg = c.snd_wnd
  in
  if not eligible then false
  else begin
    let plen = Mbuf.length seg.Tcp_wire.payload in
    if plen > 0 && not (c.ooseg = [] && plen <= rcv_window c) then false
    else begin
      let t = c.engine in
      if plen = 0 then begin
        c.fast_acks <- c.fast_acks + 1;
        t.predicted_acks <- t.predicted_acks + 1
      end
      else begin
        c.fast_data <- c.fast_data + 1;
        t.predicted_data <- t.predicted_data + 1
      end;
      process_ack c seg;
      if c.state <> State.Closed then begin
        (* The wl1/wl2 update the slow path would make; the window value
           itself is unchanged by the eligibility guard. *)
        if
          Tcp_seq.lt c.snd_wl1 seg.Tcp_wire.seq
          || (c.snd_wl1 = seg.Tcp_wire.seq && Tcp_seq.le c.snd_wl2 seg.Tcp_wire.ack)
        then begin
          c.snd_wl1 <- seg.Tcp_wire.seq;
          c.snd_wl2 <- seg.Tcp_wire.ack;
          if c.snd_wnd > 0 then c.persist <- stop_timer c.persist
        end;
        if plen > 0 then begin
          (* In-order data landing entirely inside the window: append
             without trimming or clipping. *)
          Bytequeue.push c.rcv_buf (Mbuf.flatten seg.Tcp_wire.payload);
          c.rcv_nxt <- Tcp_seq.add c.rcv_nxt plen;
          schedule_ack c;
          wake_all c
        end;
        output c
      end;
      true
    end
  end

(* --- established-state input ------------------------------------------ *)

let process_segment_slow c (seg : Tcp_wire.segment) =
  let payload_len = Mbuf.length seg.Tcp_wire.payload in
  let seg_len = Tcp_wire.seg_len seg in
  let win = rcv_window c in
  let seq = seg.Tcp_wire.seq in
  (* RFC 793 acceptability test. *)
  let acceptable =
    if seg_len = 0 && win = 0 then seq = c.rcv_nxt
    else if seg_len = 0 then Tcp_seq.in_window seq ~base:c.rcv_nxt ~size:win
    else if win = 0 then false
    else
      Tcp_seq.in_window seq ~base:c.rcv_nxt ~size:win
      || Tcp_seq.in_window (Tcp_seq.add seq (seg_len - 1)) ~base:c.rcv_nxt ~size:win
  in
  if not acceptable then begin
    if not seg.Tcp_wire.flags.Tcp_wire.rst then begin
      c.ack_now <- true;
      output c
    end
  end
  else if seg.Tcp_wire.flags.Tcp_wire.rst then drop_with_error c "connection reset by peer"
  else if seg.Tcp_wire.flags.Tcp_wire.syn && Tcp_seq.ge seq c.rcv_nxt then begin
    (* New SYN inside the window: fatal. *)
    c.engine.rsts_out <- c.engine.rsts_out + 1;
    send_segment c ~seq:c.snd_nxt
      ~flags:{ Tcp_wire.no_flags with Tcp_wire.rst = true }
      ~payload:Mbuf.empty ~with_mss:false;
    drop_with_error c "SYN received on synchronized connection"
  end
  else if not seg.Tcp_wire.flags.Tcp_wire.ack then () (* nothing further without ACK *)
  else begin
    (* SYN_RCVD completes here. *)
    if c.state = State.Syn_received then begin
      if Tcp_seq.gt seg.Tcp_wire.ack c.snd_una && Tcp_seq.le seg.Tcp_wire.ack c.snd_max
      then begin
        transition c Tcp_fsm.Rcv_ack_of_syn;
        trace c "established (passive open)";
        arm_keepalive c;
        (match c.accept_box with
        | Some box ->
            c.accept_box <- None;
            (* The witness is minted at the instant of establishment and
               travels with the connection to accept. *)
            let w =
              match Tcp_fsm.Packed.established c.fsm with
              | Some w -> w
              | None -> assert false
            in
            Mailbox.send box (c, w)
        | None -> ());
        wake_all c
      end
      else begin
        send_rst_for c.engine ~src:c.remote_ip ~seg;
        drop_with_error c "bad ACK completing handshake"
      end
    end;
    if c.state = State.Closed then ()
    else begin
      process_ack c seg;
      if c.state = State.Closed then ()
      else begin
        (* Window update (RFC 793 ordering on wl1/wl2). *)
        if
          Tcp_seq.lt c.snd_wl1 seq
          || (c.snd_wl1 = seq && Tcp_seq.le c.snd_wl2 seg.Tcp_wire.ack)
        then begin
          let old_wnd = c.snd_wnd in
          c.snd_wnd <- seg_snd_wnd c seg;
          c.snd_wl1 <- seq;
          c.snd_wl2 <- seg.Tcp_wire.ack;
          if c.snd_wnd > 0 then c.persist <- stop_timer c.persist;
          if c.snd_wnd > old_wnd then wake_all c
        end;
        (* Payload. *)
        if payload_len > 0 then begin
          if State.can_receive_data c.state then begin
            (* Trim any already-received prefix. *)
            let skip = Stdlib.max 0 (Tcp_seq.diff c.rcv_nxt seq) in
            if skip < payload_len then begin
              let seq' = Tcp_seq.add seq skip in
              let data = Mbuf.flatten (Mbuf.drop seg.Tcp_wire.payload skip) in
              (* Clip to our window. *)
              let room = Tcp_seq.diff (Tcp_seq.add c.rcv_nxt win) seq' in
              let keep = Stdlib.min (View.length data) (Stdlib.max 0 room) in
              if keep > 0 then begin
                let data = View.sub data 0 keep in
                if seq' = c.rcv_nxt then begin
                  Bytequeue.push c.rcv_buf data;
                  c.rcv_nxt <- Tcp_seq.add c.rcv_nxt keep;
                  drain_ooseg c;
                  schedule_ack c;
                  wake_all c
                end
                else begin
                  insert_ooseg c seq' data;
                  c.ack_now <- true (* duplicate ACK for fast retransmit *)
                end
              end
            end
            else c.ack_now <- true
          end
          else c.ack_now <- true
        end;
        (* FIN: only when it lands exactly in order. *)
        if
          seg.Tcp_wire.flags.Tcp_wire.fin && not c.fin_received
          && Tcp_seq.add seq payload_len = c.rcv_nxt
          && c.ooseg = []
        then begin
          c.fin_received <- true;
          c.rcv_nxt <- Tcp_seq.add c.rcv_nxt 1;
          c.ack_now <- true;
          (match c.state with
          | State.Established -> transition c Tcp_fsm.Rcv_fin_established
          | State.Fin_wait_1 ->
              (* Our FIN wasn't acked by this segment (else we'd be in
                 FIN_WAIT_2 already): simultaneous close. *)
              transition c Tcp_fsm.Rcv_fin_fin_wait_1
          | State.Fin_wait_2 ->
              transition c Tcp_fsm.Rcv_fin_fin_wait_2;
              enter_time_wait c
          | _ -> ());
          wake_all c
        end
        else if seg.Tcp_wire.flags.Tcp_wire.fin && c.fin_received then c.ack_now <- true;
        output c
      end
    end
  end

let process_segment c (seg : Tcp_wire.segment) =
  touch_keepalive c;
  (* PAWS (RFC 1323 §4.2): a timestamped segment whose TSval is older
     than the newest in-window timestamp is a stale duplicate from a
     previous window — acknowledge and drop it before any sequence
     processing. *)
  let paws_reject =
    match seg.Tcp_wire.opts.Tcp_wire.ts with
    | Some (tsval, _) when c.ts_ok && not seg.Tcp_wire.flags.Tcp_wire.rst ->
        Tcp_seq.diff tsval c.ts_recent < 0
    | _ -> false
  in
  if paws_reject then begin
    c.slow_segments <- c.slow_segments + 1;
    c.ack_now <- true;
    output c
  end
  else begin
    (match seg.Tcp_wire.opts.Tcp_wire.ts with
    | Some (tsval, _)
      when c.ts_ok
           && Tcp_seq.le seg.Tcp_wire.seq c.rcv_nxt
           && Tcp_seq.diff tsval c.ts_recent >= 0 ->
        c.ts_recent <- tsval
    | _ -> ());
    if try_fast_path c seg then ()
    else begin
      c.slow_segments <- c.slow_segments + 1;
      process_segment_slow c seg
    end
  end

(* --- SYN_SENT input ---------------------------------------------------- *)

let process_syn_sent c (seg : Tcp_wire.segment) =
  let f = seg.Tcp_wire.flags in
  let ack_ok =
    (not f.Tcp_wire.ack)
    || (Tcp_seq.gt seg.Tcp_wire.ack c.iss && Tcp_seq.le seg.Tcp_wire.ack c.snd_max)
  in
  if not ack_ok then begin
    if not f.Tcp_wire.rst then send_rst_for c.engine ~src:c.remote_ip ~seg
  end
  else if f.Tcp_wire.rst then begin
    if f.Tcp_wire.ack then drop_with_error c "connection refused"
  end
  else if f.Tcp_wire.syn then begin
    c.irs <- seg.Tcp_wire.seq;
    c.rcv_nxt <- Tcp_seq.add seg.Tcp_wire.seq 1;
    (match seg.Tcp_wire.opts.Tcp_wire.mss with
    | Some peer_mss -> c.mss <- Stdlib.min c.mss peer_mss
    | None -> c.mss <- Stdlib.min c.mss c.engine.prm.Tcp_params.mss_default);
    Cong_control.set_mss c.cc c.mss;
    (* Still in SYN_SENT: the witness grants the option permit for both
       the SYN-ACK and the simultaneous-open paths. *)
    negotiate_options c seg.Tcp_wire.opts;
    c.snd_wnd <- seg.Tcp_wire.wnd;
    c.snd_wl1 <- seg.Tcp_wire.seq;
    c.snd_wl2 <- seg.Tcp_wire.ack;
    if f.Tcp_wire.ack then begin
      (* Standard open: SYN-ACK received. *)
      c.snd_una <- seg.Tcp_wire.ack;
      c.rexmt <- stop_timer c.rexmt;
      c.backoff <- 0;
      transition c Tcp_fsm.Rcv_syn_ack;
      trace c "established (active open)";
      arm_keepalive c;
      c.ack_now <- true;
      wake_all c;
      output c
    end
    else begin
      (* Simultaneous open. *)
      transition c Tcp_fsm.Simultaneous_syn;
      arm_rexmt c;
      send_segment c ~seq:c.iss ~flags:flags_syn_ack ~payload:Mbuf.empty ~with_mss:true
    end
  end

(* --- engine input ------------------------------------------------------ *)

let handle_syn_for_listener t l (seg : Tcp_wire.segment) ~src =
  let prm = t.prm in
  let iss = Rng.int t.env.Proto_env.rng 0x0fffffff in
  let c =
    { engine = t;
      local_port = l.lport;
      remote_ip = src;
      remote_port = seg.Tcp_wire.src_port;
      state = State.Syn_received;
      fsm = Tcp_fsm.Packed.passive_accept ();
      snd_buf = (if prm.Tcp_params.zero_copy then I (Iovec.create ()) else Q (Bytequeue.create ()));
      iss;
      snd_una = iss;
      snd_nxt = Tcp_seq.add iss 1;
      snd_max = Tcp_seq.add iss 1;
      snd_wnd = seg.Tcp_wire.wnd;
      snd_wl1 = seg.Tcp_wire.seq;
      snd_wl2 = 0;
      fin_queued = false;
      fin_sent = false;
      rcv_buf = Bytequeue.create ();
      irs = seg.Tcp_wire.seq;
      rcv_nxt = Tcp_seq.add seg.Tcp_wire.seq 1;
      rcv_adv = Tcp_seq.add seg.Tcp_wire.seq 1;
      loaned_bytes = 0;
      fin_received = false;
      ooseg = [];
      recent_oo = None;
      cc =
        Cong_control.create prm.Tcp_params.cong_control ~mss:prm.Tcp_params.mss_default
          ~initial_segments:prm.Tcp_params.initial_cwnd_segments;
      dupacks = 0;
      ws_ok = false;
      snd_scale = 0;
      rcv_scale = 0;
      sack_ok = false;
      ts_ok = false;
      ts_recent = 0;
      sb = Sack.create ();
      sack_cursor = iss;
      sack_rexmits = 0;
      rec_start = None;
      rec_point = iss;
      rec_samples_us = [];
      unknown_opts = 0;
      wnd_clamps = 0;
      last_emit = Proto_env.now t.env;
      srtt_us = 0.;
      rttvar_us = 0.;
      rtt_min_us = 0.;
      rto = prm.Tcp_params.initial_rto;
      backoff = 0;
      rtt_timing = None;
      mss = prm.Tcp_params.mss_default;
      rexmt = None;
      persist = None;
      delack = None;
      time_wait = None;
      keepalive = None;
      idle_since = Proto_env.now t.env;
      ka_probes = 0;
      unacked_segs = 0;
      ack_now = false;
      fast_acks = 0;
      fast_data = 0;
      slow_segments = 0;
      output_active = false;
      output_pending = false;
      error = None;
      detached = false;
      waiters = Queue.create ();
      closed_callbacks = [];
      pace_next = Time.zero;
      pacer = None;
      accept_box = Some l.backlog }
  in
  let our_mss = Ipv4.mtu t.ip - Ipv4.header_size - Tcp_wire.header_size in
  c.mss <-
    Stdlib.min
      (match seg.Tcp_wire.opts.Tcp_wire.mss with
      | Some m -> m
      | None -> prm.Tcp_params.mss_default)
      our_mss;
  Cong_control.reinit c.cc ~mss:c.mss;
  negotiate_options c seg.Tcp_wire.opts;
  Hashtbl.replace t.pcbs (conn_key c) c;
  arm_rexmt c;
  send_segment c ~seq:c.iss ~flags:flags_syn_ack ~payload:Mbuf.empty ~with_mss:true

(* --- receive coalescing (rx_coalesce) ---------------------------------- *)

(* Merge eligibility is deliberately conservative: anything that could
   change ACK generation, SACK/dupack behavior or option processing
   relative to per-packet arrival flows through the ordinary path.
   Only plain in-order data — flags within ACK|PSH, no SACK blocks, no
   unknown options, a PAWS-fresh timestamp — may join a run; the run
   itself is bounded by the advertised window and a monotone ack
   field. *)
let gro_plain c (seg : Tcp_wire.segment) =
  let f = seg.Tcp_wire.flags in
  let o = seg.Tcp_wire.opts in
  c.state = State.Established
  && f.Tcp_wire.ack
  && (not f.Tcp_wire.syn)
  && (not f.Tcp_wire.rst)
  && (not f.Tcp_wire.fin)
  && o.Tcp_wire.sack = []
  && o.Tcp_wire.unknown = []
  && Mbuf.length seg.Tcp_wire.payload > 0
  && (match o.Tcp_wire.ts with
     | Some (tsval, _) -> c.ts_ok && Tcp_seq.diff tsval c.ts_recent >= 0
     | None -> not c.ts_ok)

let gro_limit c =
  let prm = c.engine.prm in
  if prm.Tcp_params.burst_ack then prm.Tcp_params.gro_budget
  else
    (* Without burst_ack a merge may not cross an ACK boundary: the cap
       lets one flush bump the segment count at most to the next
       [ack_every] multiple, so the emitted ACK stream is identical to
       per-packet arrival. *)
    Stdlib.min prm.Tcp_params.gro_budget
      (Stdlib.max 0 (prm.Tcp_params.ack_every - c.unacked_segs))

let gro_flush t =
  match t.gro with
  | None -> ()
  | Some g ->
      t.gro <- None;
      let c = g.g_conn in
      t.gro_flushes <- t.gro_flushes + 1;
      (* The run pays the input state machine once; per-frame byte
         touching and absorb costs were charged on arrival. *)
      Proto_env.charge t.env t.env.Proto_env.costs.Costs.tcp_input;
      if c.state <> State.Closed && not c.detached then begin
        let payload =
          let v = View.create g.g_len in
          let pos = ref 0 in
          List.iter
            (fun chunk ->
              View.blit chunk 0 v !pos (View.length chunk);
              pos := !pos + View.length chunk)
            (List.rev g.g_chunks);
          Mbuf.of_view v
        in
        let seg =
          { g.g_first with
            Tcp_wire.ack = g.g_ack;
            wnd = g.g_wnd;
            flags = { Tcp_wire.no_flags with Tcp_wire.ack = true; psh = g.g_psh };
            opts = { Tcp_wire.no_opts with Tcp_wire.ts = g.g_ts };
            payload }
        in
        t.gro_segs <- g.g_count;
        (* ACK policy is untouched here: the flushed run flows through
           the same delayed-ACK accounting as per-packet arrival
           ([schedule_ack] counts its [gro_segs] wire segments), so
           FIN and out-of-order segments still force an immediate ACK
           and a pushed run waits out the cadence exactly as it would
           have packet by packet.  Delaying a reply's ACK delays
           nothing the application sees — the data is delivered at
           flush — it only lets the ACK answer several replies at
           once, which is the burst_ack saving. *)
        Fun.protect
          ~finally:(fun () -> t.gro_segs <- 1)
          (fun () -> process_segment c seg)
      end

let gro_absorb t g (seg : Tcp_wire.segment) =
  let costs = t.env.Proto_env.costs in
  let seg_bytes = Mbuf.length seg.Tcp_wire.payload in
  Proto_env.charge t.env costs.Costs.gro_append;
  let src_v = Mbuf.flatten seg.Tcp_wire.payload in
  let copy = View.create seg_bytes in
  View.blit src_v 0 copy 0 seg_bytes;
  g.g_chunks <- copy :: g.g_chunks;
  g.g_len <- g.g_len + seg_bytes;
  g.g_count <- g.g_count + 1;
  g.g_ack <- seg.Tcp_wire.ack;
  g.g_wnd <- seg.Tcp_wire.wnd;
  (match seg.Tcp_wire.opts.Tcp_wire.ts with Some _ as ts -> g.g_ts <- ts | None -> ());
  if seg.Tcp_wire.flags.Tcp_wire.psh then g.g_psh <- true;
  t.gro_merged <- t.gro_merged + 1;
  if g.g_count >= g.g_limit then gro_flush t

let gro_start t c (seg : Tcp_wire.segment) =
  let costs = t.env.Proto_env.costs in
  let seg_bytes = Mbuf.length seg.Tcp_wire.payload in
  Proto_env.charge t.env costs.Costs.gro_append;
  let src_v = Mbuf.flatten seg.Tcp_wire.payload in
  let copy = View.create seg_bytes in
  View.blit src_v 0 copy 0 seg_bytes;
  t.gro <-
    Some
      { g_conn = c;
        g_first = seg;
        g_chunks = [ copy ];
        g_len = seg_bytes;
        g_count = 1;
        g_limit = gro_limit c;
        g_room = rcv_window c;
        g_ack = seg.Tcp_wire.ack;
        g_wnd = seg.Tcp_wire.wnd;
        g_ts = seg.Tcp_wire.opts.Tcp_wire.ts;
        g_psh = seg.Tcp_wire.flags.Tcp_wire.psh }

let input_gro t ~src ~dst payload =
  (* The rx_coalesce burst path.  Per-frame byte-touching costs are
     charged exactly as in [input]; the [tcp_input] state-machine
     charge is deferred — absorbed frames pay the cheaper [gro_append]
     and the merged run pays [tcp_input] once at flush. *)
  let costs = t.env.Proto_env.costs in
  let len = Mbuf.length payload in
  if t.prm.Tcp_params.zero_copy then
    Proto_env.charge_bytes ~kind:Cpu.Checksum t.env
      ~per_byte_ns:costs.Costs.checksum_per_byte_ns len
  else if t.prm.Tcp_params.fused_checksum then
    Proto_env.charge_bytes ~kind:Cpu.Copy_checksum t.env
      ~per_byte_ns:costs.Costs.copy_checksum_per_byte_ns len
  else begin
    Proto_env.charge_bytes ~kind:Cpu.Checksum t.env
      ~per_byte_ns:costs.Costs.checksum_per_byte_ns len;
    Proto_env.charge_bytes ~kind:Cpu.Copy t.env ~per_byte_ns:costs.Costs.copy_per_byte_ns
      (Stdlib.max 0 (len - Tcp_wire.header_size))
  end;
  match Tcp_wire.decode ~src_ip:src ~dst_ip:dst payload with
  | None ->
      (* Corruption is still detected per frame — a merge never hides a
         bad checksum; the pending run is unaffected. *)
      Proto_env.charge t.env costs.Costs.tcp_input;
      t.checksum_failures <- t.checksum_failures + 1
  | Some seg -> (
      t.segments_in <- t.segments_in + 1;
      let unknown = List.length seg.Tcp_wire.opts.Tcp_wire.unknown in
      if unknown > 0 then t.unknown_options <- t.unknown_options + unknown;
      let k =
        key ~remote_ip:src ~remote_port:seg.Tcp_wire.src_port
          ~local_port:seg.Tcp_wire.dst_port
      in
      match Hashtbl.find_opt t.pcbs k with
      | Some c -> (
          if unknown > 0 then c.unknown_opts <- c.unknown_opts + unknown;
          let seg_bytes = Mbuf.length seg.Tcp_wire.payload in
          match t.gro with
          | Some g
            when g.g_conn == c
                 && gro_plain c seg
                 && seg.Tcp_wire.seq = Tcp_seq.add g.g_first.Tcp_wire.seq g.g_len
                 && g.g_count < g.g_limit
                 && g.g_len + seg_bytes <= g.g_room
                 && Tcp_seq.ge seg.Tcp_wire.ack g.g_ack ->
              gro_absorb t g seg
          | pending -> (
              (* Not a continuation: close out any run first (segments
                 must be processed in arrival order), then either start
                 a new run or take the ordinary per-packet path. *)
              (match pending with Some _ -> gro_flush t | None -> ());
              if c.state = State.Syn_sent then begin
                Proto_env.charge t.env costs.Costs.tcp_input;
                process_syn_sent c seg
              end
              else if
                gro_plain c seg
                && seg.Tcp_wire.seq = c.rcv_nxt
                && c.ooseg = []
                && seg_bytes <= rcv_window c
                && gro_limit c >= 2
              then gro_start t c seg
              else begin
                Proto_env.charge t.env costs.Costs.tcp_input;
                process_segment c seg
              end))
      | None -> (
          (* Listener / unknown traffic never coalesces; a pending run
             (necessarily another connection) is undisturbed. *)
          Proto_env.charge t.env costs.Costs.tcp_input;
          match Hashtbl.find_opt t.listeners seg.Tcp_wire.dst_port with
          | Some l
            when seg.Tcp_wire.flags.Tcp_wire.syn
                 && (not seg.Tcp_wire.flags.Tcp_wire.ack)
                 && not seg.Tcp_wire.flags.Tcp_wire.rst ->
              handle_syn_for_listener t l seg ~src
          | _ ->
              let claimed =
                match t.unknown_hook with
                | Some hook -> hook ~src ~dst payload
                | None -> false
              in
              if (not claimed) && not seg.Tcp_wire.flags.Tcp_wire.rst then
                send_rst_for t ~src ~seg))

let begin_burst t = if t.prm.Tcp_params.rx_coalesce then t.in_burst <- t.in_burst + 1

let end_burst t =
  t.in_burst <- Stdlib.max 0 (t.in_burst - 1);
  (* The closing episode's run must reach the application before its
     thread goes back to sleep; a sibling's still-open run flushed here
     merely restarts (cheaply) on its next frame. *)
  gro_flush t

let input t ~src ~dst payload =
  let costs = t.env.Proto_env.costs in
  Proto_env.charge t.env costs.Costs.tcp_input;
  let len = Mbuf.length payload in
  if t.prm.Tcp_params.zero_copy then
    (* The frame stays in its loaned receive buffer: one checksum-only
       verification pass; delivery hands the application a reference. *)
    Proto_env.charge_bytes ~kind:Cpu.Checksum t.env
      ~per_byte_ns:costs.Costs.checksum_per_byte_ns len
  else if t.prm.Tcp_params.fused_checksum then
    (* One pass verifies the checksum and moves the payload toward the
       receive buffer. *)
    Proto_env.charge_bytes ~kind:Cpu.Copy_checksum t.env
      ~per_byte_ns:costs.Costs.copy_checksum_per_byte_ns len
  else begin
    (* Two passes: checksum the whole segment, then copy the payload. *)
    Proto_env.charge_bytes ~kind:Cpu.Checksum t.env
      ~per_byte_ns:costs.Costs.checksum_per_byte_ns len;
    Proto_env.charge_bytes ~kind:Cpu.Copy t.env ~per_byte_ns:costs.Costs.copy_per_byte_ns
      (Stdlib.max 0 (len - Tcp_wire.header_size))
  end;
  match Tcp_wire.decode ~src_ip:src ~dst_ip:dst payload with
  | None -> t.checksum_failures <- t.checksum_failures + 1
  | Some seg -> (
      t.segments_in <- t.segments_in + 1;
      (* Unknown option kinds are skipped by the decoder but surfaced
         here: an aggregate engine counter plus a per-connection one
         (visible through [conn_options]). *)
      let unknown = List.length seg.Tcp_wire.opts.Tcp_wire.unknown in
      if unknown > 0 then t.unknown_options <- t.unknown_options + unknown;
      let k =
        key ~remote_ip:src ~remote_port:seg.Tcp_wire.src_port
          ~local_port:seg.Tcp_wire.dst_port
      in
      match Hashtbl.find_opt t.pcbs k with
      | Some c ->
          if unknown > 0 then c.unknown_opts <- c.unknown_opts + unknown;
          if c.state = State.Syn_sent then process_syn_sent c seg else process_segment c seg
      | None -> (
          match Hashtbl.find_opt t.listeners seg.Tcp_wire.dst_port with
          | Some l
            when seg.Tcp_wire.flags.Tcp_wire.syn
                 && (not seg.Tcp_wire.flags.Tcp_wire.ack)
                 && not seg.Tcp_wire.flags.Tcp_wire.rst ->
              handle_syn_for_listener t l seg ~src
          | _ ->
              let claimed =
                match t.unknown_hook with
                | Some hook -> hook ~src ~dst payload
                | None -> false
              in
              if (not claimed) && not seg.Tcp_wire.flags.Tcp_wire.rst then
                send_rst_for t ~src ~seg))

(* --- public API --------------------------------------------------------- *)

let create env ip ?(params = Tcp_params.default) () =
  let t =
    { env;
      ip;
      prm = params;
      pcbs = Hashtbl.create 32;
      listeners = Hashtbl.create 8;
      rst_on_unknown = true;
      unknown_hook = None;
      time_wait_hook = None;
      segments_in = 0;
      segments_out = 0;
      retransmissions = 0;
      rsts_out = 0;
      checksum_failures = 0;
      predicted_acks = 0;
      predicted_data = 0;
      unknown_options = 0;
      in_burst = 0;
      gro = None;
      gro_segs = 1;
      gro_merged = 0;
      gro_flushes = 0;
      acks_elided = 0;
      gso_sends = 0;
      gso_fallbacks = 0;
      tx_release_batches = 0;
      tx_releases = 0;
      pacer_waits = 0;
      pacer_wait_us = 0.;
      pacer_hist = Hashtbl.create 8 }
  in
  (* [in_burst] is only ever set when rx_coalesce is on; otherwise every
     frame takes [input] — the per-packet path, charge order included. *)
  Ipv4.set_handler ip ~proto:6 (fun ~src ~dst payload ->
      if t.in_burst > 0 then input_gro t ~src ~dst payload else input t ~src ~dst payload);
  t

let fresh_conn t ~local_port ~remote_ip ~remote_port ~fsm ~iss =
  { engine = t;
    local_port;
    remote_ip;
    remote_port;
    state = Tcp_fsm.Packed.state fsm;
    fsm;
    snd_buf = (if t.prm.Tcp_params.zero_copy then I (Iovec.create ()) else Q (Bytequeue.create ()));
    iss;
    snd_una = iss;
    snd_nxt = iss;
    snd_max = iss;
    snd_wnd = 0;
    snd_wl1 = 0;
    snd_wl2 = 0;
    fin_queued = false;
    fin_sent = false;
    rcv_buf = Bytequeue.create ();
    irs = 0;
    rcv_nxt = 0;
    rcv_adv = 0;
    loaned_bytes = 0;
    fin_received = false;
    ooseg = [];
    recent_oo = None;
    cc =
      Cong_control.create t.prm.Tcp_params.cong_control ~mss:t.prm.Tcp_params.mss_default
        ~initial_segments:t.prm.Tcp_params.initial_cwnd_segments;
    dupacks = 0;
    ws_ok = false;
    snd_scale = 0;
    rcv_scale = 0;
    sack_ok = false;
    ts_ok = false;
    ts_recent = 0;
    sb = Sack.create ();
    sack_cursor = iss;
    sack_rexmits = 0;
    rec_start = None;
    rec_point = iss;
    rec_samples_us = [];
    unknown_opts = 0;
    wnd_clamps = 0;
    last_emit = Proto_env.now t.env;
    srtt_us = 0.;
    rttvar_us = 0.;
    rtt_min_us = 0.;
    rto = t.prm.Tcp_params.initial_rto;
    backoff = 0;
    rtt_timing = None;
    mss = t.prm.Tcp_params.mss_default;
    rexmt = None;
    persist = None;
    delack = None;
    time_wait = None;
    keepalive = None;
    idle_since = Proto_env.now t.env;
    ka_probes = 0;
    unacked_segs = 0;
    ack_now = false;
    fast_acks = 0;
    fast_data = 0;
    slow_segments = 0;
    output_active = false;
    output_pending = false;
    error = None;
    detached = false;
    waiters = Queue.create ();
    closed_callbacks = [];
    pace_next = Time.zero;
    pacer = None;
    accept_box = None }

(* Active open, first half: create the control block in SYN_SENT without
   putting the SYN on the wire.  The returned witness is what setup-plane
   code (the registry) derives its handshake-window BQI permit from
   before launching the handshake. *)
let connect_prepare t ~src_port ~dst ~dst_port =
  let k = key ~remote_ip:dst ~remote_port:dst_port ~local_port:src_port in
  if Hashtbl.mem t.pcbs k then Error "address in use"
  else begin
    let iss = Rng.int t.env.Proto_env.rng 0x0fffffff in
    let c =
      fresh_conn t ~local_port:src_port ~remote_ip:dst ~remote_port:dst_port
        ~fsm:(Tcp_fsm.Packed.active_open ()) ~iss
    in
    c.mss <- Ipv4.mtu t.ip - Ipv4.header_size - Tcp_wire.header_size;
    Cong_control.reinit c.cc ~mss:c.mss;
    c.snd_nxt <- Tcp_seq.add iss 1;
    c.snd_max <- c.snd_nxt;
    Hashtbl.replace t.pcbs k c;
    match Tcp_fsm.Packed.syn_sent c.fsm with
    | Some w -> Ok (c, w)
    | None -> assert false
  end

(* Active open, second half: send the SYN and block until the handshake
   resolves, returning the establishment witness. *)
let connect_launch c =
  arm_rexmt c;
  send_segment c ~seq:c.iss ~flags:flags_syn ~payload:Mbuf.empty ~with_mss:true;
  while c.state = State.Syn_sent || c.state = State.Syn_received do
    wait_on c
  done;
  match Tcp_fsm.Packed.established c.fsm with
  | Some w -> Ok w
  | None -> Error (match c.error with Some e -> e | None -> "connection failed")

let connect t ~src_port ~dst ~dst_port =
  match connect_prepare t ~src_port ~dst ~dst_port with
  | Error e -> Error e
  | Ok (c, _syn_sent) -> (
      match connect_launch c with
      | Ok w -> Ok (c, w)
      | Error e -> Error e)

let listen t ~port =
  if Hashtbl.mem t.listeners port then failwith (Printf.sprintf "Tcp.listen: port %d in use" port);
  let l = { lport = port; backlog = Mailbox.create () } in
  Hashtbl.replace t.listeners port l;
  l

(* A fresh proof that the listener's endpoint went Closed -> Listen; the
   BQI permit for SYN-ACKs of not-yet-accepted connections derives from
   it. *)
let listener_witness (_ : listener) : [ `Listen ] Tcp_fsm.state =
  Tcp_fsm.step (Tcp_fsm.closed ()) Tcp_fsm.Passive_open

let accept l = Mailbox.recv l.backlog
let close_listener t l = Hashtbl.remove t.listeners l.lport

let check_alive c op =
  if c.detached then raise (Connection_error (op ^ ": connection was handed off"));
  match c.error with Some e -> raise (Connection_error e) | None -> ()

let write c data =
  check_alive c "write";
  let prm = c.engine.prm in
  let len = View.length data in
  let sent = ref 0 in
  while !sent < len do
    check_alive c "write";
    (* The runtime double of the typed send permit: data is accepted
       only in Established or half-closed Close_wait. *)
    if Tcp_fsm.Packed.send_permit c.fsm = None then
      raise
        (Connection_error
           (if State.synchronized c.state then "write on closing connection"
            else "write before connection established"));
    let space = prm.Tcp_params.snd_buf - sendq_length c.snd_buf in
    if space <= 0 then wait_on c
    else begin
      let n = Stdlib.min space (len - !sent) in
      (match c.snd_buf with
      | Q q -> Bytequeue.push q (View.sub data !sent n)
      | I i ->
          (* The caller keeps ownership of [data] and may scribble on it
             immediately, so the chain gets a private snapshot.  The
             cost of this copy is the caller's problem (the socket layer
             charges the vm_remap fallback for non-pool buffers); the
             engine itself still runs the chain checksum-only. *)
          Iovec.push i (View.copy (View.sub data !sent n)));
      sent := !sent + n;
      output c
    end
  done

(* Queue an application-owned buffer by reference: the engine reads it
   in place for (re)transmission and fires [release] when its last byte
   is acknowledged (or the queue is torn down).  The caller must not
   touch the buffer until then — this is the contract of
   [Sockets.alloc_tx]/[send_owned].  Requires a zero-copy connection. *)
let write_owned ?release c data =
  check_alive c "write_owned";
  (match c.snd_buf with
  | I _ -> ()
  | Q _ -> raise (Connection_error "write_owned: connection is not zero-copy"));
  let prm = c.engine.prm in
  let len = View.length data in
  let rec wait_for_space () =
    check_alive c "write_owned";
    if Tcp_fsm.Packed.send_permit c.fsm = None then
      raise
        (Connection_error
           (if State.synchronized c.state then "write_owned on closing connection"
            else "write_owned before connection established"));
    (* The view is queued whole (its release must fire exactly once),
       so wait until the whole length fits — or the queue is empty, so
       an oversized view cannot deadlock. *)
    if
      prm.Tcp_params.snd_buf - sendq_length c.snd_buf < len
      && sendq_length c.snd_buf > 0
    then begin
      wait_on c;
      wait_for_space ()
    end
  in
  wait_for_space ();
  (match c.snd_buf with I i -> Iovec.push ?release i data | Q _ -> assert false);
  output c

let maybe_window_update c =
  (* Send a window update once the window has opened significantly
     (2*MSS or half the buffer) beyond what was last advertised. *)
  let avail = rcv_window c in
  let edge = Tcp_seq.add c.rcv_nxt (advertisable c avail) in
  let opening = Tcp_seq.diff edge c.rcv_adv in
  if opening >= 2 * c.mss || opening >= c.engine.prm.Tcp_params.rcv_buf / 2 then begin
    c.ack_now <- true;
    output c
  end

let read c ~max =
  let rec go () =
    if Bytequeue.length c.rcv_buf > 0 then begin
      let v = Bytequeue.pop c.rcv_buf (Stdlib.max 1 max) in
      maybe_window_update c;
      Some v
    end
    else if c.fin_received then None
    else begin
      (match c.error with Some e -> raise (Connection_error e) | None -> ());
      if c.detached then raise (Connection_error "read: connection was handed off");
      if c.state = State.Closed then None
      else begin
        wait_on c;
        go ()
      end
    end
  in
  go ()

(* Loaned delivery: like [read], but the bytes remain charged against
   the receive window until [return_loan] gives them back — the
   buffer-loaning back-pressure.  The engine tracks loan *lengths*; the
   identity of the loaned pool buffer is the socket layer's business.
   The loan is taken before any window update is considered, so the
   advertised window never transiently grows and then shrinks back. *)
let read_loan c ~max =
  let rec go () =
    if Bytequeue.length c.rcv_buf > 0 then begin
      let v = Bytequeue.pop c.rcv_buf (Stdlib.max 1 max) in
      c.loaned_bytes <- c.loaned_bytes + View.length v;
      Some v
    end
    else if c.fin_received then None
    else begin
      (match c.error with Some e -> raise (Connection_error e) | None -> ());
      if c.detached then raise (Connection_error "read_loan: connection was handed off");
      if c.state = State.Closed then None
      else begin
        wait_on c;
        go ()
      end
    end
  in
  go ()

let return_loan c len =
  if len < 0 then invalid_arg "Tcp.return_loan: negative length";
  c.loaned_bytes <- Stdlib.max 0 (c.loaned_bytes - len);
  if c.state <> State.Closed && not c.detached then maybe_window_update c

let close c =
  if not c.detached then
    match c.state with
    | State.Closed | State.Time_wait | State.Fin_wait_1 | State.Fin_wait_2 | State.Closing
    | State.Last_ack ->
        ()
    | State.Listen | State.Syn_sent -> finish_cleanly c
    | State.Syn_received | State.Established | State.Close_wait ->
        c.fin_queued <- true;
        output c

let abort c =
  if (not c.detached) && c.state <> State.Closed then begin
    if State.synchronized c.state then begin
      c.engine.rsts_out <- c.engine.rsts_out + 1;
      send_segment c ~seq:c.snd_nxt
        ~flags:{ Tcp_wire.no_flags with Tcp_wire.rst = true; ack = true }
        ~payload:Mbuf.empty ~with_mss:false
    end;
    drop_with_error c "connection aborted"
  end

let await_closed c =
  while c.state <> State.Closed do
    wait_on c
  done

(* --- handoff ------------------------------------------------------------ *)

let export_common c =
  let snap =
    { snap_local_port = c.local_port;
      snap_remote_ip = c.remote_ip;
      snap_remote_port = c.remote_port;
      snap_iss = c.iss;
      snap_irs = c.irs;
      snap_snd_una = c.snd_una;
      snap_snd_nxt = c.snd_nxt;
      snap_snd_wnd = c.snd_wnd;
      snap_rcv_nxt = c.rcv_nxt;
      snap_mss = c.mss;
      snap_srtt_us = c.srtt_us;
      snap_rttvar_us = c.rttvar_us;
      snap_rcv_pending =
        View.to_string (Bytequeue.peek c.rcv_buf ~off:0 ~len:(Bytequeue.length c.rcv_buf)) }
  in
  c.rexmt <- stop_timer c.rexmt;
  c.persist <- stop_timer c.persist;
  c.delack <- stop_timer c.delack;
  c.detached <- true;
  remove_conn c;
  wake_all c;
  snap

let export c ~witness:(_ : [ `Established ] Tcp_fsm.state) =
  (* The witness proves the caller saw ESTABLISHED; the dynamic check
     stays as the shadow oracle for the window between the two. *)
  if c.state <> State.Established then failwith "Tcp.export: connection not ESTABLISHED";
  if sendq_length c.snd_buf > 0 then failwith "Tcp.export: unsent data in send buffer";
  export_common c

let export_force c =
  if c.state <> State.Established then failwith "Tcp.export_force: connection not ESTABLISHED";
  (* Unacknowledged data is lost with the application; the peer will be
     reset, so the snapshot pretends the stream ends at snd_una. *)
  sendq_clear c.snd_buf;
  Bytequeue.clear c.rcv_buf;
  let snap = export_common c in
  { snap with snap_snd_nxt = snap.snap_snd_una; snap_rcv_pending = "" }

let await_drained c =
  while
    c.state <> State.Closed
    && (sendq_length c.snd_buf > 0 || Tcp_seq.gt c.snd_nxt c.snd_una)
  do
    wait_on c
  done

let import t snap =
  let c =
    fresh_conn t ~local_port:snap.snap_local_port ~remote_ip:snap.snap_remote_ip
      ~remote_port:snap.snap_remote_port ~fsm:(Tcp_fsm.Packed.import ()) ~iss:snap.snap_iss
  in
  c.irs <- snap.snap_irs;
  c.snd_una <- snap.snap_snd_una;
  c.snd_nxt <- snap.snap_snd_nxt;
  c.snd_max <- snap.snap_snd_nxt;
  c.snd_wnd <- snap.snap_snd_wnd;
  c.snd_wl1 <- snap.snap_rcv_nxt;
  c.snd_wl2 <- snap.snap_snd_una;
  c.rcv_nxt <- snap.snap_rcv_nxt;
  c.rcv_adv <- snap.snap_rcv_nxt;
  if snap.snap_rcv_pending <> "" then Bytequeue.push_string c.rcv_buf snap.snap_rcv_pending;
  c.mss <- snap.snap_mss;
  Cong_control.reinit c.cc ~mss:c.mss;
  c.srtt_us <- snap.snap_srtt_us;
  c.rttvar_us <- snap.snap_rttvar_us;
  Hashtbl.replace t.pcbs (conn_key c) c;
  arm_keepalive c;
  c
