module Time = Uln_engine.Time
module Timers = Uln_engine.Timers
module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Ip = Uln_addr.Ip
module Costs = Uln_host.Costs

let header_size = 20
let reasm_timeout = Time.sec 30

type handler = src:Ip.t -> dst:Ip.t -> Mbuf.t -> unit

type reasm = {
  mutable pieces : (int * View.t) list; (* byte offset, data; sorted *)
  mutable total : int option; (* known once the last fragment arrives *)
  mutable expire : Timers.handle option;
}

type t = {
  env : Proto_env.t;
  my_ip : Ip.t;
  mtu : int;
  tx : ?gso_size:int -> dst:Ip.t -> Mbuf.t -> unit;
  handlers : (int, handler) Hashtbl.t;
  reassembly : (Ip.t * Ip.t * int * int, reasm) Hashtbl.t;
  mutable ident : int;
  mutable packets_in : int;
  mutable packets_out : int;
  mutable drops : int;
  mutable fragments_out : int;
  mutable reassembled : int;
}

let create env ~my_ip ~mtu ~tx =
  { env;
    my_ip;
    mtu;
    tx;
    handlers = Hashtbl.create 8;
    reassembly = Hashtbl.create 8;
    ident = 1;
    packets_in = 0;
    packets_out = 0;
    drops = 0;
    fragments_out = 0;
    reassembled = 0 }

let my_ip t = t.my_ip
let mtu t = t.mtu
let set_handler t ~proto h = Hashtbl.replace t.handlers proto h
let packets_in t = t.packets_in
let packets_out t = t.packets_out
let drops t = t.drops
let fragments_out t = t.fragments_out
let reassembled t = t.reassembled

let encode_header t ~proto ~dst ~ttl ~payload_len ~ident ~flags ~frag_off =
  let h = View.create header_size in
  View.set_uint8 h 0 0x45;
  View.set_uint8 h 1 0;
  View.set_uint16 h 2 (header_size + payload_len);
  View.set_uint16 h 4 ident;
  View.set_uint16 h 6 ((flags lsl 13) lor (frag_off lsr 3));
  View.set_uint8 h 8 ttl;
  View.set_uint8 h 9 proto;
  View.set_uint16 h 10 0;
  View.set_uint32 h 12 (Ip.to_int32 t.my_ip);
  View.set_uint32 h 16 (Ip.to_int32 dst);
  View.set_uint16 h 10 (Checksum.of_view h);
  h

let output t ~proto ~dst ?(ttl = 64) ?(gso_size = 0) payload =
  Proto_env.charge t.env t.env.Proto_env.costs.Costs.ip_output;
  let len = Mbuf.length payload in
  let max_payload = t.mtu - header_size in
  t.ident <- (t.ident + 1) land 0xffff;
  let ident = t.ident in
  if gso_size > 0 then begin
    (* Segmentation offload: the oversized packet bypasses IP
       fragmentation — the NIC cuts it into wire frames that are each a
       complete, independently valid IP/TCP packet (never fragments),
       so the descriptor's gso_size travels to the driver instead. *)
    let hdr = encode_header t ~proto ~dst ~ttl ~payload_len:len ~ident ~flags:0 ~frag_off:0 in
    t.packets_out <- t.packets_out + 1;
    t.tx ~gso_size ~dst (Mbuf.prepend hdr payload)
  end
  else if len <= max_payload then begin
    let hdr = encode_header t ~proto ~dst ~ttl ~payload_len:len ~ident ~flags:0 ~frag_off:0 in
    t.packets_out <- t.packets_out + 1;
    t.tx ~dst (Mbuf.prepend hdr payload)
  end
  else begin
    (* Fragment on 8-byte boundaries. *)
    let chunk = max_payload land lnot 7 in
    let rec go off =
      if off < len then begin
        let this = Stdlib.min chunk (len - off) in
        let last = off + this >= len in
        let flags = if last then 0 else 1 (* MF *) in
        let piece = Mbuf.take (Mbuf.drop payload off) this in
        let hdr =
          encode_header t ~proto ~dst ~ttl ~payload_len:this ~ident ~flags ~frag_off:off
        in
        t.packets_out <- t.packets_out + 1;
        t.fragments_out <- t.fragments_out + 1;
        t.tx ~dst (Mbuf.prepend hdr piece);
        go (off + this)
      end
    in
    go 0
  end

let drop t = t.drops <- t.drops + 1

(* Insert a fragment and deliver the datagram when fully covered. *)
let reassemble t ~key ~frag_off ~more_fragments data deliver =
  let r =
    match Hashtbl.find_opt t.reassembly key with
    | Some r -> r
    | None ->
        let r = { pieces = []; total = None; expire = None } in
        let expire =
          Timers.arm t.env.Proto_env.timers reasm_timeout (fun () ->
              if Hashtbl.mem t.reassembly key then begin
                Hashtbl.remove t.reassembly key;
                drop t
              end)
        in
        r.expire <- Some expire;
        Hashtbl.replace t.reassembly key r;
        r
  in
  let len = View.length data in
  r.pieces <-
    List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) ((frag_off, data) :: r.pieces);
  if not more_fragments then r.total <- Some (frag_off + len);
  match r.total with
  | None -> ()
  | Some total ->
      (* Complete iff the sorted pieces cover [0, total) without holes. *)
      let covered =
        List.fold_left
          (fun pos (off, piece) ->
            if off <= pos then Stdlib.max pos (off + View.length piece) else pos)
          0 r.pieces
      in
      if covered >= total then begin
        (match r.expire with Some h -> Timers.disarm h | None -> ());
        Hashtbl.remove t.reassembly key;
        t.reassembled <- t.reassembled + 1;
        (* Rebuild the payload, clipping overlaps. *)
        let out = View.create total in
        List.iter
          (fun (off, piece) ->
            let n = Stdlib.min (View.length piece) (total - off) in
            if n > 0 then View.blit piece 0 out off n)
          r.pieces;
        deliver (Mbuf.of_view out)
      end

let input t packet =
  Proto_env.charge t.env t.env.Proto_env.costs.Costs.ip_input;
  t.packets_in <- t.packets_in + 1;
  if Mbuf.length packet < header_size then drop t
  else begin
    let hdr = Mbuf.flatten (Mbuf.take packet header_size) in
    let version_ihl = View.get_uint8 hdr 0 in
    let total_len = View.get_uint16 hdr 2 in
    if version_ihl <> 0x45 then drop t
    else if Checksum.of_view hdr <> 0 then drop t
    else if total_len > Mbuf.length packet || total_len < header_size then drop t
    else begin
      let src = Ip.of_int32 (View.get_uint32 hdr 12) in
      let dst = Ip.of_int32 (View.get_uint32 hdr 16) in
      let for_us = Ip.equal dst t.my_ip || Ip.equal dst Ip.broadcast in
      if not for_us then drop t (* no gateway functions, as in the paper *)
      else begin
        let proto = View.get_uint8 hdr 9 in
        let ident = View.get_uint16 hdr 4 in
        let ff = View.get_uint16 hdr 6 in
        let more_fragments = ff land 0x2000 <> 0 in
        let frag_off = (ff land 0x1fff) lsl 3 in
        (* Trim link-level padding (Ethernet minimum frame size). *)
        let payload = Mbuf.take (Mbuf.drop packet header_size) (total_len - header_size) in
        let deliver payload =
          match Hashtbl.find_opt t.handlers proto with
          | Some h -> h ~src ~dst payload
          | None -> drop t
        in
        if more_fragments || frag_off > 0 then
          reassemble t ~key:(src, dst, proto, ident) ~frag_off ~more_fragments
            (Mbuf.flatten payload) deliver
        else deliver payload
      end
    end
  end
