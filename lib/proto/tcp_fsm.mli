(** Session-typed RFC-793 state machine: transition witnesses, packed
    storage for the engine, and the relation as data for proto-check.

    A [('from, 'to_) transition] value is the only way to move between
    states; the permit constructors {!send_data} and {!bqi_exchange}
    demand a witness of the right index, so a data send before
    ESTABLISHED or a BQI exchange outside the handshake is a type
    error.  The typed layer splits the untyped [Closed] into the
    pre-open [[`Closed]] index and the terminal [[`Gone]] index, which
    has no outgoing transitions: a retired witness (2MSL expiry, abort,
    final FIN ack) is dead at compile time, so TIME_WAIT resurrection
    is unrepresentable.  See test/compile_fail for the harness that
    keeps these claims honest.

    Witnesses are also dynamically linear: stepping one marks it spent,
    and stepping it again raises {!Violation} — the runtime backstop
    for the aliasing the type system cannot rule out. *)

module State = Tcp_state

type 's state
(** A witness that a connection is in the state the phantom index
    names.  Indices: [[`Closed]], [[`Listen]], [[`Syn_sent]],
    [[`Syn_received]], [[`Established]], [[`Fin_wait_1]],
    [[`Fin_wait_2]], [[`Close_wait]], [[`Closing]], [[`Last_ack]],
    [[`Time_wait]], and the terminal [[`Gone]]. *)

type ('from, 'to_) transition =
  | Passive_open : ([ `Closed ], [ `Listen ]) transition
  | Active_open : ([ `Closed ], [ `Syn_sent ]) transition
  | Rcv_syn : ([ `Listen ], [ `Syn_received ]) transition
  | Rcv_syn_ack : ([ `Syn_sent ], [ `Established ]) transition
  | Simultaneous_syn : ([ `Syn_sent ], [ `Syn_received ]) transition
  | Rcv_ack_of_syn : ([ `Syn_received ], [ `Established ]) transition
  | Send_fin_established : ([ `Established ], [ `Fin_wait_1 ]) transition
  | Send_fin_syn_received : ([ `Syn_received ], [ `Fin_wait_1 ]) transition
  | Send_fin_close_wait : ([ `Close_wait ], [ `Last_ack ]) transition
  | Rcv_fin_established : ([ `Established ], [ `Close_wait ]) transition
  | Rcv_fin_fin_wait_1 : ([ `Fin_wait_1 ], [ `Closing ]) transition
  | Rcv_fin_fin_wait_2 : ([ `Fin_wait_2 ], [ `Time_wait ]) transition
  | Fin_acked_fin_wait_1 : ([ `Fin_wait_1 ], [ `Fin_wait_2 ]) transition
  | Fin_acked_closing : ([ `Closing ], [ `Time_wait ]) transition
  | Fin_acked_last_ack : ([ `Last_ack ], [ `Gone ]) transition
  | Close_listen : ([ `Listen ], [ `Gone ]) transition
  | Close_syn_sent : ([ `Syn_sent ], [ `Gone ]) transition
  | Expire_2msl : ([ `Time_wait ], [ `Gone ]) transition
  | Abort_listen : ([ `Listen ], [ `Gone ]) transition
  | Abort_syn_sent : ([ `Syn_sent ], [ `Gone ]) transition
  | Abort_syn_received : ([ `Syn_received ], [ `Gone ]) transition
  | Abort_established : ([ `Established ], [ `Gone ]) transition
  | Abort_fin_wait_1 : ([ `Fin_wait_1 ], [ `Gone ]) transition
  | Abort_fin_wait_2 : ([ `Fin_wait_2 ], [ `Gone ]) transition
  | Abort_close_wait : ([ `Close_wait ], [ `Gone ]) transition
  | Abort_closing : ([ `Closing ], [ `Gone ]) transition
  | Abort_last_ack : ([ `Last_ack ], [ `Gone ]) transition
  | Abort_time_wait : ([ `Time_wait ], [ `Gone ]) transition

val source : ('f, 't) transition -> State.t
val target : ('f, 't) transition -> State.t
(** Runtime shadows of the indices ([`Gone] shadows to [Closed]). *)

val closed : unit -> [ `Closed ] state
(** A fresh endpoint. *)

val import_established : unit -> [ `Established ] state
(** Entry point for connection handoff: the imported snapshot is the
    proof that the exporting side held an ESTABLISHED witness
    ({!Packed.established} on export, this on import). *)

val step : 's state -> ('s, 't) transition -> 't state
(** Apply a transition.  Consumes the witness (dynamically linear).
    @raise Violation if the witness was already spent. *)

val state_of : 's state -> State.t

(** {2 Permits}

    A permit is a proof derived from a witness, not a consumable token. *)

type send_permit
type bqi_permit
type option_permit

val send_data : [< `Established | `Close_wait ] state -> send_permit
(** Only an open (or half-closed, Close_wait) connection may transmit
    new application data. *)

val bqi_exchange : [< `Listen | `Syn_sent | `Syn_received ] state -> bqi_permit
(** BQI hints ride only on handshake segments: stamping or learning one
    requires a handshake-state witness. *)

val negotiate_options : [< `Listen | `Syn_sent | `Syn_received ] state -> option_permit
(** TCP options (MSS, window scale, SACK-permitted, timestamps) are
    negotiated only on SYN/SYN-ACK segments: committing a connection to
    a peer's offer requires a handshake-state witness.  Once
    established, the negotiated values are frozen — there is no permit
    from any synchronized state. *)

val send_states : State.t list
val bqi_states : State.t list
val opt_states : State.t list
val recv_states : State.t list
(** Value-level mirrors of the permit rows (and of the receive-direction
    policy); proto-check asserts they agree with {!Tcp_state}'s
    predicates. *)

(** {2 Violations} *)

type violation =
  | Reused of State.t
  | Wrong_source of { witness : State.t; wanted : State.t }
  | Shadow_divergence of { witness : State.t; shadow : State.t }

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

val transitions_applied : unit -> int
val shadow_checks_made : unit -> int
val reset_counters : unit -> unit
(** Process-wide instrumentation: how many witness steps and shadow
    assertions have run (tests assert the oracle is actually exercised). *)

(** {2 Reflection: the relation as data} *)

type event =
  | Ev_passive_open
  | Ev_active_open
  | Ev_rcv_syn
  | Ev_rcv_syn_ack
  | Ev_rcv_ack_of_syn
  | Ev_send_fin
  | Ev_rcv_fin
  | Ev_fin_acked
  | Ev_close
  | Ev_abort
  | Ev_expire_2msl

val all_events : event list
val event_name : event -> string
val event_of : ('f, 't) transition -> event

type edge = { e_from : State.t; e_event : event; e_to : State.t }

val edges : edge list
(** The declared relation, one edge per GADT constructor. *)

val all_states : State.t list

val ignored : State.t -> (event * string) list
(** The (event, reason) pairs deliberately left without a transition in
    each state.  proto-check requires [edges] and [ignored] to tile the
    full state x event grid exactly. *)

(** {2 Packed witnesses} *)

module Packed : sig
  type t
  (** A witness with its index hidden: what a connection record stores. *)

  val state : t -> State.t

  val active_open : unit -> t
  (** Closed -> Syn_sent, via {!Active_open}. *)

  val passive_accept : unit -> t
  (** Closed -> Listen -> Syn_received: each SYN accepted by a listener
      mints its own FSM instance (one per TCB, as in RFC 793). *)

  val import : unit -> t
  (** An imported (handoff) connection: ESTABLISHED on arrival. *)

  val at : State.t -> t
  (** Analysis/test entry only: a witness parked at an arbitrary state
      with no typed pedigree.  Engine code must not use this. *)

  val check_shadow : t -> State.t -> unit
  (** Assert the shadow oracle.
      @raise Violation on divergence. *)

  val apply : t -> ('f, 't) transition -> t
  (** Apply a typed transition to a packed witness; the typed layer's
      source check happens dynamically here.
      @raise Violation on source mismatch or a spent witness. *)

  val apply_event : t -> event -> (t, [ `Ignored of string | `Invalid of string ]) result
  (** The runtime dispatch over (state, event).  proto-check verifies it
      against {!edges} + {!ignored} exhaustively. *)

  val established : t -> [ `Established ] state option
  val syn_sent : t -> [ `Syn_sent ] state option
  val send_permit : t -> send_permit option
  val bqi_permit : t -> bqi_permit option
  val option_permit : t -> option_permit option
  (** Dynamic proof queries: a fresh typed witness or permit, justified
      by the packed witness's current state. *)

  val retire : t -> clean:bool -> t
  (** Take the matching edge to the terminal state: close/expire edges
      when [clean], abort edges otherwise.  Identity on Closed. *)
end
