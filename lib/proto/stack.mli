(** A complete stack instance: ARP + IPv4 + ICMP + UDP + TCP over one
    link attachment.

    This is "the protocol library" of the paper: the same composition is
    instantiated inside the kernel (Ultrix organization), inside the UX
    server (Mach organization), or inside each application (the paper's
    organization).  Where it runs is decided entirely by the [netif] the
    creator passes in and the {!Proto_env.t} it charges. *)

type netif = {
  mtu : int;
  mac : Uln_addr.Mac.t;
  tx : Uln_net.Frame.t -> unit;
      (** transmit a frame; called in thread context and may block *)
}

type t = private {
  env : Proto_env.t;
  netif : netif;
  arp : Arp.t;
  ip : Ipv4.t;
  icmp : Icmp.t;
  udp : Udp.t;
  tcp : Tcp.t;
  rrp : Rrp.t;  (** the request-response transport — a second protocol
                    library co-existing with TCP (paper §1.1) *)
  mutable unknown : int;
  mutable unresolved : int;
}

val create :
  Proto_env.t ->
  netif:netif ->
  ip_addr:Uln_addr.Ip.t ->
  ?tcp_params:Tcp_params.t ->
  unit ->
  t

val input : t -> Uln_net.Frame.t -> unit
(** Hand a received frame to the stack (thread context).  Dispatches on
    the link-level type: ARP to the resolver, IP upward; other types are
    counted and dropped. *)

val unknown_frames : t -> int

val add_static_arp : t -> Uln_addr.Ip.t -> Uln_addr.Mac.t -> unit
(** Pre-seed resolution (used where a trusted party answers instead of
    broadcasting, and by tests). *)

val unresolved_drops : t -> int
(** Outbound packets dropped because ARP resolution failed. *)

val begin_rx_burst : t -> unit
(** Bracket a batch of {!input} calls that arrived in one receive
    wakeup: TCP may then merge contiguous in-order segments and run its
    input machine once per merged run ({!Tcp.begin_burst}).  A no-op
    unless {!Tcp_params.rx_coalesce} is on. *)

val end_rx_burst : t -> unit
(** Close the bracket and flush any pending merge. *)
