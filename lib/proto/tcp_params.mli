(** Tunable TCP parameters.

    Defaults follow 4.3BSD behaviour scaled to the simulator (100 ms
    protocol tick): Nagle on, delayed ACK with an ACK forced every
    second segment, Jacobson RTT estimation with Karn's rule, 2MSL of
    60 s. *)

type t = {
  mss_default : int;  (** assumed peer MSS when no option is seen *)
  snd_buf : int;  (** send socket-buffer size in bytes *)
  rcv_buf : int;  (** receive socket-buffer size in bytes *)
  nagle : bool;
  ack_every : int;  (** force an ACK after this many unacked segments *)
  delack : Uln_engine.Time.span;  (** delayed-ACK timeout *)
  initial_rto : Uln_engine.Time.span;
  min_rto : Uln_engine.Time.span;
  max_rto : Uln_engine.Time.span;
  max_backoff : int;  (** retransmissions before giving up *)
  timer_granularity : Uln_engine.Time.span;
      (** tick of the protocol timer wheel.  The default 100 ms is the
          BSD slow-timeout heartbeat the paper-era engine assumes; note
          that a timer armed just before a tick boundary fires at that
          boundary, so a timeout of [n] ticks can elapse in as little as
          [n-1] ticks plus an instant.  High bandwidth-delay paths need
          a fine tick (the [wan] preset uses 1 ms): with a coarse wheel
          an RTO equal to one tick fires spuriously under a WAN round
          trip, and RFC 1323 round-trip timing is quantized away. *)
  msl : Uln_engine.Time.span;  (** one maximum segment lifetime *)
  initial_cwnd_segments : int;
  keepalive : Uln_engine.Time.span option;
      (** idle time before probing the peer ([None] disables, the
          default); after {!keepalive_probes} unanswered probes the
          connection is dropped *)
  keepalive_interval : Uln_engine.Time.span;  (** spacing between probes *)
  keepalive_probes : int;
  header_prediction : bool;
      (** Van Jacobson header prediction: in ESTABLISHED, segments that
          are exactly the next expected in-order ACK or data, with no
          flags beyond ACK(+PSH) and no window change, take a short fast
          path that bypasses the full input state machine.  Behaviour is
          identical (differentially tested); [false] is the ablation
          oracle. *)
  fused_checksum : bool;
      (** Compute the transmit checksum during the copy out of the send
          buffer (one pass, charged at
          {!Uln_host.Costs.copy_checksum_per_byte_ns}) instead of
          copying then summing in two passes; [false] charges the two
          separate passes and uses the byte-at-a-time reference. *)
  zero_copy : bool;
      (** Zero-copy data path: the send queue is a scatter-gather chain
          of referenced buffers ({!Uln_buf.Iovec}), payload bytes are
          charged a single checksum-only pass (no
          [copy_per_byte_ns]/[copy_checksum_per_byte_ns]), received data
          can be loaned out to the application with outstanding loans
          shrinking the advertised window, and the library submits
          segments through batched descriptor rings.  [false] (the
          default) keeps the copying path as the differential-testing
          oracle. *)
  overlap_setup : bool;
      (** Overlapped connection setup: the registry pipelines the user
          channel build (region/ring/filter work, and the BQI machinery
          on AN1) with the remote SYN round trip instead of serializing
          them — the paper's §4 lament that outbound setup processing is
          "non-overlapped" with the peer's round trip.  Affects only
          {e when} setup CPU work is charged, never what is charged or
          any wire traffic; [false] (the default) is the sequential
          oracle. *)
  channel_pool : bool;
      (** Channel recycling across connections: on final release the
          registry parks the user channel (shared region, rings,
          semaphore, capability, BQI ring) instead of destroying it, and
          the next connect/accept re-arms a parked channel — paying
          {!Uln_core.Calibration.channel_reuse_setup} for the
          filter/template install instead of the full
          {!Uln_core.Calibration.registry_channel_setup} region build.
          [false] creates and destroys per connection, as the paper's
          system does. *)
  endpoint_lease : bool;
      (** Endpoint leases: one registry IPC grants the library a block
          of ports with a pre-verified parameterized filter/template
          shape plus pre-built channels; subsequent active opens stamp
          the template in the network I/O module locally (the kernel
          constructs the filter from the validated 4-tuple, preserving
          the anti-impersonation check) and run the handshake on the
          library's own engine — no registry round trip, no TCP state
          transfer.  [false] routes every connect through the
          registry. *)
  time_wait_wheel : bool;
      (** Registry TIME_WAIT wheel: connections the registry inherits
          park their 2MSL residue as a lightweight (4-tuple, port,
          filter) record on a hierarchical {!Uln_engine.Timer_wheel}
          with capacity accounting, instead of holding a full protocol
          control block with a per-connection engine timer; abnormal
          exits reset peers in one batched pass.  [false] keeps the
          full-PCB inheritance path. *)
  smp_locking : [ `Big_lock | `Per_conn ];
      (** Locking discipline of the {e in-kernel} organization on a
          multiprocessor host: [`Big_lock] (the default, faithful to
          contemporary BSD/Ultrix) serializes all netisr protocol
          processing under one kernel lock regardless of CPU count;
          [`Per_conn] gives each per-CPU stack its own lock so
          connections steered to different CPUs proceed in parallel.
          Irrelevant (no lock is ever taken) on a 1-CPU machine and in
          the other organizations. *)
  hier_demux : bool;
      (** Hierarchical demultiplexing of the flow-cache miss path: the
          network I/O module's table groups conjunctive-exact filters by
          constrained-offset shape and hashes their constraint bytes, so
          a miss costs a few calibrated probes independent of the
          connection count instead of an O(n) scan of every installed
          filter.  Matching is provably identical ({!Uln_filter.Demux});
          [false] (the default) keeps the linear scan as the
          differential oracle and the measured baseline. *)
  shard_registry : bool;
      (** Sharded registry control plane: port, pending-connection and
          TIME_WAIT tables are partitioned across per-CPU shards keyed
          by a stable hash of the connection 4-tuple, each shard guarded
          by its own ranked lock, with cross-shard operations posted
          through one-way {!Uln_host.Ipc} messages — so concurrent
          setups on an SMP host stop serializing on one flat table.
          [false] (the default) keeps the single flat table as the
          differential oracle. *)
  window_scale : bool;
      (** RFC 1323 window scaling: offer a shift count on the SYN sized
          from [rcv_buf] and, when both sides agree, carry all
          non-SYN windows shifted — lifting the 16-bit/64KB flight cap
          on high bandwidth×delay paths.  [false] (the default) never
          offers the option, never honours a peer's offer, and keeps the
          64KB cap as the differential oracle. *)
  timestamps : bool;
      (** RFC 1323 timestamps: TSval/TSecr on every segment once
          negotiated on the SYN, giving an RTT measurement on every ACK
          (feeding the same Jacobson srtt/rttvar estimator) instead of
          one Karn-guarded sample per window, plus PAWS sequence checks
          on receive.  [false] (the default) keeps the single-sample
          timer as the differential oracle. *)
  sack : bool;
      (** RFC 2018 selective acknowledgements: negotiated on the SYN;
          the receiver reports up to 3 out-of-order blocks per ACK, the
          sender keeps a reneging-safe scoreboard and during recovery
          retransmits only unSACKed holes under pipe accounting
          (several holes per RTT) instead of go-back-N.  [false] (the
          default) keeps Reno fast-retransmit/timeout recovery as the
          differential oracle. *)
  cong_control : [ `Reno | `Newreno | `Cubic ];
      (** Congestion-control algorithm ({!Cong_control}): [`Reno] (the
          default) is the historical behaviour extracted verbatim;
          [`Newreno] adds RFC 6582 partial-ACK recovery; [`Cubic] grows
          the window as a cubic of time since the last loss, keeping
          high-BDP pipes full.  Payload delivery is identical under
          all three (differentially tested); only pacing differs. *)
  rx_coalesce : bool;
      (** Receive aggregation: the library drains its channel ring in
          bursts and performs a GRO-style merge of consecutive in-order
          segments of one connection before handing them to the engine,
          so the protocol input path (and its
          {!Uln_host.Costs.t.tcp_input} charge) runs once per burst
          instead of once per packet.  Merging is conservative — only
          ESTABLISHED connections, only plain ACK(+PSH) data landing
          exactly at [rcv_nxt] with no out-of-order backlog, no SACK
          blocks, PAWS-fresh timestamps, wholly inside the advertised
          window — so anything unusual flows through the per-packet
          path unchanged.  Without {!burst_ack} a merge is additionally
          capped so the ACK stream stays identical to per-packet
          arrival.  [false] (the default) is the per-packet oracle. *)
  burst_ack : bool;
      (** Burst-aware ACK coalescing: lift the {!rx_coalesce} merge cap
          to {!gro_budget} and acknowledge once per merged burst rather
          than every {!ack_every} segments, with an immediate ACK when
          the burst carries PSH; FIN and out-of-order segments are never
          merged, so their immediate-ACK behaviour (and SACK recovery)
          is untouched.  [false] (the default) keeps the per-packet ACK
          cadence as the differential oracle. *)
  int_suppress : bool;
      (** NAPI-style adaptive interrupt suppression at the NIC: the
          first frame after quiescence raises one interrupt which
          disables further rx interrupts and enters a budgeted poll
          loop; the poll drains the device ring at
          {!Uln_host.Costs.t.napi_poll_frame} per frame, yields the CPU
          between budget slices, and re-arms interrupts when the ring
          runs dry.  The device ring is bounded, so overload drops
          frames early at the ring (cheaply, counted) instead of
          livelocking the host with per-frame interrupt work.  [false]
          (the default) charges one interrupt per frame. *)
  gro_budget : int;
      (** Most original segments one {!rx_coalesce} merge may absorb
          when {!burst_ack} lifts the ACK-cadence cap (default 32). *)
  tx_gso : bool;
      (** GSO-style segmentation offload: one send episode builds one
          oversized logical segment (up to {!gso_max}, window- and
          cwnd-clamped) and hands it to the NIC, which cuts it into
          wire-MSS frames with replayed headers and fresh checksums
          ({!Uln_net.Txq}) — so [tcp_output], header encode and driver
          descriptor work run once per episode instead of once per MSS.
          Retransmissions, SACK-hole fills and sub-MSS tails always
          take the per-segment path.  The wire traffic is byte-identical
          to the per-segment path (differentially tested); [false] (the
          default) is the per-segment oracle. *)
  tx_complete_coalesce : bool;
      (** Moderated transmit completions: finished tx descriptors are
          reaped in batches — one completion event per
          {!Uln_core.Calibration.txc_budget} descriptors or
          {!Uln_core.Calibration.txc_delay} settle window — and the
          zero-copy send queue batches its release-on-ack buffer
          returns per ACK-processing pass instead of firing one
          callback per queued buffer.  Every release still fires
          exactly once (differentially tested); [false] (the default)
          completes and releases immediately, one at a time. *)
  pacing : bool;
      (** Software pacing: data transmission is spread at the
          congestion-control rate cwnd/srtt (timer-wheel scheduled at
          {!timer_granularity}) instead of being released in line-rate
          bursts, so a GSO episode's frames do not arrive as one
          incast-killing burst.  Pure ACKs, retransmissions and the
          first flight (no RTT sample yet) are never delayed; data
          order is unchanged.  [false] (the default) transmits as soon
          as the window allows. *)
  gso_max : int;
      (** Largest logical segment one {!tx_gso} episode may build
          (default 65535 — the IP total-length ceiling). *)
}

val default : t

val fast : t
(** Small timeouts for loss-recovery tests (keeps simulated durations
    short); protocol behaviour is otherwise identical. *)

val wan : t
(** High bandwidth×delay preset: [fast] timers with 1MB socket buffers
    and window scaling, timestamps, SACK and Cubic enabled — the
    configuration the [bench wan] sweep calls "+wscale+sack" rows. *)

val coalesced : t
(** Small-message preset: [fast] with {!t.rx_coalesce}, {!t.burst_ack}
    and {!t.int_suppress} all on — the full coalescing fast path the
    rpc/incast benches compare against the per-packet baseline. *)

val tx_fast : t
(** Transmit-side preset: [fast] with {!t.zero_copy} plus {!t.tx_gso},
    {!t.tx_complete_coalesce} and {!t.pacing} all on — the sender fast
    path the [bench tx] ablation rows compare against the zero-copy
    baseline. *)

(** {2 Ablation-switch registry}

    Every switch field of {!t} that ablates an implementation technique
    (as opposed to choosing a policy) must register here with a
    differential oracle — the [file:ident] of the qcheck property that
    pins the on/off behavioural equivalence — and the bench-smoke row
    that drives the switch end to end on every test run.  The
    proto-check switch lint fails the build when a switch field has no
    entry, or an entry's oracle or row has gone stale. *)

type switch = {
  sw_field : string;  (** record field name in {!t} *)
  sw_oracle : string;  (** [file:ident] of the differential property *)
  sw_bench_row : string;  (** label of the [@bench-smoke] row that exercises it *)
}

val switches : switch list

val policy_fields : (string * string) list
(** Switch-shaped fields exempt from the lint, with the reason each is a
    policy choice rather than an ablation. *)
