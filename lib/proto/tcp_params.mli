(** Tunable TCP parameters.

    Defaults follow 4.3BSD behaviour scaled to the simulator (100 ms
    protocol tick): Nagle on, delayed ACK with an ACK forced every
    second segment, Jacobson RTT estimation with Karn's rule, 2MSL of
    60 s. *)

type t = {
  mss_default : int;  (** assumed peer MSS when no option is seen *)
  snd_buf : int;  (** send socket-buffer size in bytes *)
  rcv_buf : int;  (** receive socket-buffer size in bytes *)
  nagle : bool;
  ack_every : int;  (** force an ACK after this many unacked segments *)
  delack : Uln_engine.Time.span;  (** delayed-ACK timeout *)
  initial_rto : Uln_engine.Time.span;
  min_rto : Uln_engine.Time.span;
  max_rto : Uln_engine.Time.span;
  max_backoff : int;  (** retransmissions before giving up *)
  msl : Uln_engine.Time.span;  (** one maximum segment lifetime *)
  initial_cwnd_segments : int;
  keepalive : Uln_engine.Time.span option;
      (** idle time before probing the peer ([None] disables, the
          default); after {!keepalive_probes} unanswered probes the
          connection is dropped *)
  keepalive_interval : Uln_engine.Time.span;  (** spacing between probes *)
  keepalive_probes : int;
  header_prediction : bool;
      (** Van Jacobson header prediction: in ESTABLISHED, segments that
          are exactly the next expected in-order ACK or data, with no
          flags beyond ACK(+PSH) and no window change, take a short fast
          path that bypasses the full input state machine.  Behaviour is
          identical (differentially tested); [false] is the ablation
          oracle. *)
  fused_checksum : bool;
      (** Compute the transmit checksum during the copy out of the send
          buffer (one pass, charged at
          {!Uln_host.Costs.copy_checksum_per_byte_ns}) instead of
          copying then summing in two passes; [false] charges the two
          separate passes and uses the byte-at-a-time reference. *)
  zero_copy : bool;
      (** Zero-copy data path: the send queue is a scatter-gather chain
          of referenced buffers ({!Uln_buf.Iovec}), payload bytes are
          charged a single checksum-only pass (no
          [copy_per_byte_ns]/[copy_checksum_per_byte_ns]), received data
          can be loaned out to the application with outstanding loans
          shrinking the advertised window, and the library submits
          segments through batched descriptor rings.  [false] (the
          default) keeps the copying path as the differential-testing
          oracle. *)
  smp_locking : [ `Big_lock | `Per_conn ];
      (** Locking discipline of the {e in-kernel} organization on a
          multiprocessor host: [`Big_lock] (the default, faithful to
          contemporary BSD/Ultrix) serializes all netisr protocol
          processing under one kernel lock regardless of CPU count;
          [`Per_conn] gives each per-CPU stack its own lock so
          connections steered to different CPUs proceed in parallel.
          Irrelevant (no lock is ever taken) on a 1-CPU machine and in
          the other organizations. *)
}

val default : t

val fast : t
(** Small timeouts for loss-recovery tests (keeps simulated durations
    short); protocol behaviour is otherwise identical. *)
