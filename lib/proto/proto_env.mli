(** Execution environment for a protocol stack instance.

    The same stack code runs inside the kernel (Ultrix organization), a
    trusted server (Mach/UX organization) or an application's linked
    library (the paper's organization).  An [env] carries everything the
    code needs from its surroundings: the clock/scheduler, the host CPU
    to charge, the cost model, a timer service and a random stream. *)

type t = {
  sched : Uln_engine.Sched.t;
  cpu : Uln_host.Cpu.t;
  costs : Uln_host.Costs.t;
  timers : Uln_engine.Timers.t;
  rng : Uln_engine.Rng.t;
}

val create :
  Uln_engine.Sched.t ->
  Uln_host.Cpu.t ->
  Uln_host.Costs.t ->
  rng:Uln_engine.Rng.t ->
  ?timer_granularity:Uln_engine.Time.span ->
  unit ->
  t
(** Build an environment; [timer_granularity] defaults to 100 ms (the
    protocol timer tick). *)

val of_machine : ?timer_granularity:Uln_engine.Time.span -> Uln_host.Machine.t -> t
(** Environment charging the machine's CPU (kernel-resident stacks). *)

val charge : t -> Uln_engine.Time.span -> unit
(** Consume CPU from the calling thread. *)

val charge_bytes : ?kind:Uln_host.Cpu.data_kind -> t -> per_byte_ns:int -> int -> unit
(** Consume [bytes * per_byte_ns] of CPU.  [kind], when given, also
    attributes the span to the CPU's per-category data-movement tally
    (see {!Uln_host.Cpu.copy_ns}) — the accounting the zero-copy
    acceptance test reads. *)

val now : t -> Uln_engine.Time.t

val spawn_handler : t -> name:string -> (unit -> unit) -> unit
(** Run work that may block (used by timer callbacks, which fire in
    event context). *)
