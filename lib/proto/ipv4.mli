(** IPv4 (RFC 791): header handling, fragmentation and reassembly.

    As in the paper's implementation, the library handles host traffic
    only — no gateway (forwarding) functions — and never emits options,
    so headers are always 20 bytes.  Fragmented datagrams are reassembled
    with a 30-second timeout. *)

type t

type handler = src:Uln_addr.Ip.t -> dst:Uln_addr.Ip.t -> Uln_buf.Mbuf.t -> unit
(** Upper-layer input: called with the transport payload. *)

val create :
  Proto_env.t ->
  my_ip:Uln_addr.Ip.t ->
  mtu:int ->
  tx:(?gso_size:int -> dst:Uln_addr.Ip.t -> Uln_buf.Mbuf.t -> unit) ->
  t
(** [mtu] is the link payload limit (1500 on both networks here); [tx]
    receives complete IP packets for link resolution and transmission.
    A non-zero [gso_size] marks an oversized segmentation-offload
    packet the NIC must cut into wire frames of at most that many TCP
    payload bytes each ({!Uln_net.Txq.split}). *)

val my_ip : t -> Uln_addr.Ip.t

val mtu : t -> int
(** The link payload limit this instance was created with. *)

val set_handler : t -> proto:int -> handler -> unit
(** Register the upper layer for an IP protocol number (6 TCP, 17 UDP,
    1 ICMP). *)

val output :
  t -> proto:int -> dst:Uln_addr.Ip.t -> ?ttl:int -> ?gso_size:int -> Uln_buf.Mbuf.t -> unit
(** Emit a datagram, fragmenting when the payload exceeds [mtu - 20].
    A positive [gso_size] instead emits the whole payload as one
    segmentation-offload packet (no fragmentation): the NIC cuts it
    into complete wire packets, so nothing oversized ever reaches the
    wire. *)

val input : t -> Uln_buf.Mbuf.t -> unit
(** Process a received IP packet (starting at the IP header).  Invalid
    packets (bad version, checksum, truncation) are counted and
    dropped. *)

val header_size : int
(** 20. *)

(* {2 Statistics} *)

val packets_in : t -> int
val packets_out : t -> int
val drops : t -> int
(** Malformed, misaddressed or undeliverable inputs. *)

val fragments_out : t -> int
val reassembled : t -> int
