module Ip = Uln_addr.Ip
module Mac = Uln_addr.Mac
module View = Uln_buf.View
module Frame = Uln_net.Frame

type netif = { mtu : int; mac : Mac.t; tx : Frame.t -> unit }

type t = {
  env : Proto_env.t;
  netif : netif;
  arp : Arp.t;
  ip : Ipv4.t;
  icmp : Icmp.t;
  udp : Udp.t;
  tcp : Tcp.t;
  rrp : Rrp.t;
  mutable unknown : int;
  mutable unresolved : int;
}

let create env ~netif ~ip_addr ?(tcp_params = Tcp_params.default) () =
  let arp = Arp.create env ~my_ip:ip_addr ~my_mac:netif.mac ~tx:netif.tx in
  let rec t_ref = ref None
  and ip_tx ?(gso_size = 0) ~dst packet =
    let send_to mac =
      netif.tx
        (Frame.make ~src:netif.mac ~dst:mac ~ethertype:Frame.ethertype_ip ~gso_size packet)
    in
    if Ip.equal dst Ip.broadcast then send_to Mac.broadcast
    else
      Arp.resolve arp dst (function
        | Some mac -> send_to mac
        | None -> (
            match !t_ref with Some t -> t.unresolved <- t.unresolved + 1 | None -> ()))
  in
  let ip = Ipv4.create env ~my_ip:ip_addr ~mtu:netif.mtu ~tx:ip_tx in
  let icmp = Icmp.create env ip in
  let udp = Udp.create env ip in
  (* Datagrams to unbound ports draw an ICMP port-unreachable; incoming
     unreachables are routed back to the offending local endpoint. *)
  Udp.set_unreachable_cb udp (fun ~src ~dst ~sport ~dport ->
      let quote = View.create 28 in
      View.set_uint8 quote 0 0x45;
      View.set_uint16 quote 2 28;
      View.set_uint8 quote 9 17;
      View.set_uint32 quote 12 (Ip.to_int32 src);
      View.set_uint32 quote 16 (Ip.to_int32 dst);
      View.set_uint16 quote 20 sport;
      View.set_uint16 quote 22 dport;
      Icmp.send_unreachable icmp ~dst:src ~code:3 ~original:quote);
  Icmp.set_unreachable_handler icmp (fun ~code:_ ~original ->
      if View.length original >= 28 && View.get_uint8 original 9 = 17 then
        Udp.deliver_unreachable udp
          ~src_port:(View.get_uint16 original 20)
          ~about:(Ip.of_int32 (View.get_uint32 original 16)));
  let tcp = Tcp.create env ip ~params:tcp_params () in
  let rrp = Rrp.create env ip in
  let t = { env; netif; arp; ip; icmp; udp; tcp; rrp; unknown = 0; unresolved = 0 } in
  t_ref := Some t;
  t

let input t frame =
  let ethertype = frame.Frame.ethertype in
  if ethertype = Frame.ethertype_arp then Arp.input t.arp frame
  else if ethertype = Frame.ethertype_ip then Ipv4.input t.ip frame.Frame.payload
  else t.unknown <- t.unknown + 1

let unknown_frames t = t.unknown
let add_static_arp t ip mac = Arp.add_static t.arp ip mac
let unresolved_drops t = t.unresolved

let begin_rx_burst t = Tcp.begin_burst t.tcp
let end_rx_burst t = Tcp.end_burst t.tcp
