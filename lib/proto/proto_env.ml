module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module Timers = Uln_engine.Timers
module Rng = Uln_engine.Rng
module Cpu = Uln_host.Cpu
module Costs = Uln_host.Costs
module Machine = Uln_host.Machine

type t = {
  sched : Sched.t;
  cpu : Cpu.t;
  costs : Costs.t;
  timers : Timers.t;
  rng : Rng.t;
}

let create sched cpu costs ~rng ?(timer_granularity = Time.ms 100) () =
  { sched; cpu; costs; timers = Timers.create sched ~granularity:timer_granularity; rng }

let of_machine ?timer_granularity (m : Machine.t) =
  create m.Machine.sched m.Machine.cpu m.Machine.costs ~rng:(Rng.split m.Machine.rng)
    ?timer_granularity ()

let charge t span = Cpu.use t.cpu span

let charge_bytes ?kind t ~per_byte_ns bytes =
  let span = Time.ns (bytes * per_byte_ns) in
  (match kind with Some k -> Cpu.note_data t.cpu k span | None -> ());
  Cpu.use t.cpu span
let now t = Sched.now t.sched
let spawn_handler t ~name f = Sched.spawn t.sched ~name f
