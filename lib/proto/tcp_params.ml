module Time = Uln_engine.Time

type t = {
  mss_default : int;
  snd_buf : int;
  rcv_buf : int;
  nagle : bool;
  ack_every : int;
  delack : Time.span;
  initial_rto : Time.span;
  min_rto : Time.span;
  max_rto : Time.span;
  max_backoff : int;
  timer_granularity : Time.span;
  msl : Time.span;
  initial_cwnd_segments : int;
  keepalive : Time.span option;
  keepalive_interval : Time.span;
  keepalive_probes : int;
  header_prediction : bool;
  fused_checksum : bool;
  zero_copy : bool;
  overlap_setup : bool;
  channel_pool : bool;
  endpoint_lease : bool;
  time_wait_wheel : bool;
  smp_locking : [ `Big_lock | `Per_conn ];
  hier_demux : bool;
  shard_registry : bool;
  window_scale : bool;
  timestamps : bool;
  sack : bool;
  cong_control : [ `Reno | `Newreno | `Cubic ];
  rx_coalesce : bool;
  burst_ack : bool;
  int_suppress : bool;
  gro_budget : int;
  tx_gso : bool;
  tx_complete_coalesce : bool;
  pacing : bool;
  gso_max : int;
}

let default =
  { mss_default = 536;
    snd_buf = 16384;
    rcv_buf = 16384;
    nagle = true;
    ack_every = 2;
    delack = Time.ms 200;
    initial_rto = Time.sec 1;
    min_rto = Time.ms 500;
    max_rto = Time.sec 64;
    max_backoff = 12;
    timer_granularity = Time.ms 100;
    msl = Time.sec 30;
    initial_cwnd_segments = 1;
    keepalive = None;
    keepalive_interval = Time.sec 75;
    keepalive_probes = 9;
    header_prediction = true;
    fused_checksum = true;
    zero_copy = false;
    overlap_setup = false;
    channel_pool = false;
    endpoint_lease = false;
    time_wait_wheel = false;
    smp_locking = `Big_lock;
    hier_demux = false;
    shard_registry = false;
    window_scale = false;
    timestamps = false;
    sack = false;
    cong_control = `Reno;
    rx_coalesce = false;
    burst_ack = false;
    int_suppress = false;
    gro_budget = 32;
    tx_gso = false;
    tx_complete_coalesce = false;
    pacing = false;
    gso_max = 65535 }

let fast =
  { default with
    delack = Time.ms 20;
    initial_rto = Time.ms 200;
    min_rto = Time.ms 100;
    max_rto = Time.sec 4;
    msl = Time.ms 500 }

let wan =
  { fast with
    snd_buf = 1 lsl 20;
    rcv_buf = 1 lsl 20;
    timer_granularity = Time.ms 1;
    min_rto = Time.ms 200;
    initial_rto = Time.ms 400;
    window_scale = true;
    timestamps = true;
    sack = true;
    cong_control = `Cubic }

(* The small-message fast path: rx burst aggregation with GRO-style
   in-order merge, burst-aware ACKs, and NAPI-style interrupt
   suppression at the NIC — the three coalescing ablations together.
   The ACK cadence is stretched to match: with whole merge runs
   counted at once, one ACK answering eight segments is the receive
   side's contribution to keeping the fan-in's ACK traffic off both
   CPUs (each pure ACK costs a transmit on one host and a full demux
   and input pass on the other). *)
let coalesced =
  { fast with rx_coalesce = true; burst_ack = true; int_suppress = true; ack_every = 8 }

(* The transmit-side fast path: one oversized logical segment per send
   episode (the NIC cuts wire frames — tx_gso), moderated batch
   reaping of finished transmit descriptors and loaned-buffer releases
   (tx_complete_coalesce), and a cwnd/srtt software pacer that spreads
   the resulting line-rate bursts (pacing).  Composed over the
   zero-copy data path — the sender baseline whose remaining
   per-segment costs GSO amortizes — and the [coalesced] receive path,
   whose stretched ACKs open multi-MSS windows in one step: without
   them transmission stays ACK-clocked in 1-2 MSS quanta and an
   offload episode never has more than two frames to merge.  Buffers
   are deepened to match (an offload episode can only be as large as
   the send queue), and the timer wheel runs at 1 ms so pacer release
   times are not quantized to the coarse RTO tick. *)
let tx_fast =
  { coalesced with
    zero_copy = true;
    snd_buf = 1 lsl 16;
    rcv_buf = 1 lsl 16;
    timer_granularity = Time.ms 1;
    tx_gso = true;
    tx_complete_coalesce = true;
    pacing = true }

(* --- the ablation-switch registry (proto-check switch lint) ----------- *)

type switch = {
  sw_field : string;
  sw_oracle : string;
  sw_bench_row : string;
}

let switches =
  [ { sw_field = "header_prediction";
      sw_oracle = "test/test_fastpath.ml:prop_prediction_equivalent_under_faults";
      sw_bench_row = "bulk userlib/ethernet/4096" };
    { sw_field = "fused_checksum";
      sw_oracle = "test/test_fastpath.ml:prop_fused_checksum_survives_corruption";
      sw_bench_row = "bulk userlib/ethernet/4096" };
    { sw_field = "zero_copy";
      sw_oracle = "test/test_fastpath.ml:prop_zero_copy_differential";
      sw_bench_row = "bulk userlib-zc" };
    { sw_field = "overlap_setup";
      sw_oracle = "test/test_churn.ml:prop_fastpath_equivalent_under_faults";
      sw_bench_row = "+lease" };
    { sw_field = "channel_pool";
      sw_oracle = "test/test_churn.ml:prop_fastpath_equivalent_under_faults";
      sw_bench_row = "+lease" };
    { sw_field = "endpoint_lease";
      sw_oracle = "test/test_churn.ml:prop_fastpath_equivalent_under_faults";
      sw_bench_row = "+lease" };
    { sw_field = "time_wait_wheel";
      sw_oracle = "test/test_churn.ml:prop_fastpath_equivalent_under_faults";
      sw_bench_row = "+lease" };
    { sw_field = "smp_locking";
      sw_oracle = "test/test_smp.ml:prop_smp_payload_identical_under_faults";
      sw_bench_row = "smp" };
    { sw_field = "hier_demux";
      sw_oracle = "test/test_scale_ctl.ml:prop_hier_demux_differential";
      sw_bench_row = "sparse-scale" };
    { sw_field = "shard_registry";
      sw_oracle = "test/test_scale_ctl.ml:prop_shard_flat_differential";
      sw_bench_row = "sharded registry" };
    { sw_field = "window_scale";
      sw_oracle = "test/test_wan.ml:prop_wscale_differential";
      sw_bench_row = "wan+wscale" };
    { sw_field = "timestamps";
      sw_oracle = "test/test_wan.ml:prop_timestamps_differential";
      sw_bench_row = "wan+wscale" };
    { sw_field = "sack";
      sw_oracle = "test/test_wan.ml:prop_sack_differential";
      sw_bench_row = "wan+wscale+sack" };
    { sw_field = "cong_control";
      sw_oracle = "test/test_wan.ml:prop_cong_control_differential";
      sw_bench_row = "wan+sack+cubic" };
    { sw_field = "ack_every";
      sw_oracle = "test/test_coalesce.ml:prop_ack_every_differential";
      sw_bench_row = "rpc/fanout" };
    { sw_field = "rx_coalesce";
      sw_oracle = "test/test_coalesce.ml:prop_rx_coalesce_differential";
      sw_bench_row = "rpc/fanout" };
    { sw_field = "burst_ack";
      sw_oracle = "test/test_coalesce.ml:prop_burst_ack_differential";
      sw_bench_row = "rpc/fanout" };
    { sw_field = "int_suppress";
      sw_oracle = "test/test_coalesce.ml:prop_int_suppress_differential";
      sw_bench_row = "incast/overload" };
    { sw_field = "tx_gso";
      sw_oracle = "test/test_txpath.ml:prop_gso_differential";
      sw_bench_row = "tx bulk an1/+gso" };
    { sw_field = "tx_complete_coalesce";
      sw_oracle = "test/test_txpath.ml:prop_txc_release_exactly_once";
      sw_bench_row = "tx bulk an1/+gso+txc" };
    { sw_field = "pacing";
      sw_oracle = "test/test_txpath.ml:prop_pacing_order_and_rate";
      sw_bench_row = "tx incast/pacing" } ]

let policy_fields =
  [ ("nagle", "congestion policy, not an implementation ablation: both settings are \
               correct TCP and produce different wire traffic by design") ]
