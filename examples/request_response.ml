(* Protocol multiplicity: the paper's motivating scenario of a
   latency-critical request-response protocol coexisting with a
   throughput-intensive byte stream on the same hosts.

   A UDP-based RPC client measures request latency twice: on idle hosts,
   and while a TCP bulk transfer hammers the same machines.  Both
   protocols run as libraries over one stack instance per host —
   "systems that need to support both types of protocols ... it is
   realistic to expect both types of protocols to co-exist".

   Run with: dune exec examples/request_response.exe *)

module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module Rng = Uln_engine.Rng
module Mailbox = Uln_engine.Mailbox
module View = Uln_buf.View
module Ip = Uln_addr.Ip
module Mac = Uln_addr.Mac
module Machine = Uln_host.Machine
module Costs = Uln_host.Costs
module Link = Uln_net.Link
module Lance = Uln_net.Lance
module Nic = Uln_net.Nic
module Stack = Uln_proto.Stack
module Proto_env = Uln_proto.Proto_env
module Udp = Uln_proto.Udp
module Tcp = Uln_proto.Tcp

type node = { stack : Stack.t }

let make_node sched link ~name ~seed ~ip =
  let machine = Machine.create sched ~name ~costs:Costs.r3000 ~rng:(Rng.create ~seed) in
  let mac = Mac.of_int (0xaa0000 + seed) in
  let nic = Lance.create machine link ~mac () in
  let env = Proto_env.of_machine machine in
  let stack =
    Stack.create env ~netif:{ Stack.mtu = nic.Nic.mtu; mac; tx = nic.Nic.send } ~ip_addr:ip ()
  in
  let rxq = Mailbox.create () in
  nic.Nic.install_rx (fun info -> Mailbox.send rxq info.Nic.frame);
  let rec rx_loop () =
    Stack.input stack (Mailbox.recv rxq);
    rx_loop ()
  in
  Sched.spawn sched ~name:(name ^ ".rx") rx_loop;
  { stack }

let run_rpcs sched client server_ip ~count =
  let ep = Udp.bind client.stack.Stack.udp ~port:5353 in
  let total = ref 0 in
  for i = 1 to count do
    let t0 = Sched.now sched in
    Udp.sendto client.stack.Stack.udp ~src_port:5353 ~dst:server_ip ~dst_port:53
      (View.of_string (Printf.sprintf "query-%d" i));
    let _answer = Udp.recv ep in
    total := !total + Time.diff (Sched.now sched) t0
  done;
  Udp.unbind client.stack.Stack.udp ep;
  Time.to_ms_f (!total / count)

let () =
  let sched = Sched.create () in
  let link = Link.ethernet sched in
  let a = make_node sched link ~name:"alpha" ~seed:1 ~ip:(Ip.of_string "10.0.0.1") in
  let b = make_node sched link ~name:"beta" ~seed:2 ~ip:(Ip.of_string "10.0.0.2") in

  (* UDP RPC server: echoes a small answer per query. *)
  Sched.spawn sched ~name:"rpc-server" (fun () ->
      let ep = Udp.bind b.stack.Stack.udp ~port:53 in
      let rec serve () =
        let d = Udp.recv ep in
        Udp.sendto b.stack.Stack.udp ~src_port:53 ~dst:d.Udp.src ~dst_port:d.Udp.src_port
          (View.of_string "answer");
        serve ()
      in
      serve ());

  (* Phase 1: idle hosts. *)
  let idle_ms = Sched.block_on sched (fun () -> run_rpcs sched a (Ip.of_string "10.0.0.2") ~count:50) in

  (* Phase 2: with a competing TCP bulk stream a->b. *)
  Sched.spawn sched ~name:"bulk-sink" (fun () ->
      let l = Tcp.listen b.stack.Stack.tcp ~port:5001 in
      let conn, _ = Tcp.accept l in
      let rec drain () = match Tcp.read conn ~max:65536 with None -> () | Some _ -> drain () in
      drain ());
  Sched.spawn sched ~name:"bulk-source" (fun () ->
      match Tcp.connect a.stack.Stack.tcp ~src_port:6001 ~dst:(Ip.of_string "10.0.0.2") ~dst_port:5001 with
      | Error e -> failwith e
      | Ok (conn, _) ->
          let chunk = View.create 4096 in
          for _ = 1 to 500 do
            Tcp.write conn chunk
          done;
          Tcp.close conn);
  let loaded_ms =
    Sched.block_on sched (fun () ->
        Sched.sleep sched (Time.ms 200) (* let the stream ramp up *);
        run_rpcs sched a (Ip.of_string "10.0.0.2") ~count:50)
  in
  Printf.printf "UDP request-response latency (Ethernet, same stack as TCP):\n";
  Printf.printf "  idle hosts:                 %6.2f ms per RPC\n" idle_ms;
  Printf.printf "  competing TCP bulk stream:  %6.2f ms per RPC\n" loaded_ms;
  Printf.printf
    "Both protocols co-exist in one stack; the stream costs the RPCs %.1fx.\n"
    (loaded_ms /. idle_ms)
