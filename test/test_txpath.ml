(* Differential tests for the transmit-side fast path: GSO-style
   segmentation offload ([tx_gso]), moderated completion reaping with
   batched zero-copy releases ([tx_complete_coalesce]), and the
   cwnd/min-RTT software pacer ([pacing]).

   The GSO differential is the strongest claim in the suite: the NIC
   cuts an offload episode into exactly the wire frames the
   per-segment path would have produced (same MSS boundaries, same
   header template), so on zero-cost hosts the two configurations must
   be wire-IDENTICAL — byte-identical payloads and identical
   data/retransmission/ACK counts under drop/dup/reorder faults.
   Completion moderation and pacing only re-time work, so their
   differentials claim payload integrity plus the property that names
   them: every loaned slot released exactly once, and paced
   transmissions in seq order at a rate that still fills the wire. *)

open Tutil
module World = Uln_core.World
module Organization = Uln_core.Organization
module Sockets = Uln_core.Sockets
module Protolib = Uln_core.Protolib

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- wire observation --------------------------------------------------- *)

(* Decode every frame at serialization (before fault injection):
   first transmissions of data (with their departure time and sequence
   number), retransmissions, and pure ACKs. *)
type wire = {
  mutable data_segs : int;
  mutable rexmits : int;
  mutable acks : int;
  mutable departures : (Time.t * int32 * int) list; (* first data transmissions, reversed *)
}

let observe link =
  let wire = { data_segs = 0; rexmits = 0; acks = 0; departures = [] } in
  let seen = Hashtbl.create 997 in
  Link.set_monitor link (fun t fr ->
      if fr.Frame.ethertype = Frame.ethertype_ip then begin
        let v = Mbuf.flatten fr.Frame.payload in
        if View.length v >= 20 && View.get_uint8 v 9 = 6 then begin
          let ihl = (View.get_uint8 v 0 land 0xf) * 4 in
          let total = Stdlib.min (View.get_uint16 v 2) (View.length v) in
          if total >= ihl + 20 then begin
            let seg = View.sub v ihl (total - ihl) in
            let sport = View.get_uint16 seg 0 and dport = View.get_uint16 seg 2 in
            let seq = View.get_uint32 seg 4 in
            let doff = (View.get_uint8 seg 12 lsr 4) * 4 in
            let flags = View.get_uint8 seg 13 in
            let len = Stdlib.max 0 (View.length seg - doff) in
            if len > 0 || flags land 0x03 <> 0 (* SYN/FIN consume seq space *)
            then begin
              let key = (sport, dport, seq, len) in
              if Hashtbl.mem seen key then wire.rexmits <- wire.rexmits + 1
              else begin
                Hashtbl.add seen key ();
                if len > 0 then wire.departures <- (t, seq, len) :: wire.departures
              end;
              if len > 0 then wire.data_segs <- wire.data_segs + 1
            end
            else if flags land 0x10 <> 0 then wire.acks <- wire.acks + 1
          end
        end
      end);
  wire

let mk_fault seed =
  Fault.create ~rng:(Rng.create ~seed) ~drop:0.02 ~duplicate:0.02 ~reorder:0.05 ()

(* --- engine-level harness: zero-cost hosts ------------------------------ *)

(* One bulk transfer alpha->beta over directly-attached stacks with
   zero host costs: any wire difference is the tx machinery's doing,
   not timing's.  Writes are multi-MSS so offload episodes have
   something to merge.  Returns the sender's engine for its tx
   counters. *)
let etransfer ?fault ?(wsize = 8192) ~params n =
  let w = make_world ~tcp_params:params ?fault () in
  let wire = observe w.link in
  let data = pattern n in
  let received = ref "" in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      received := read_all conn;
      Tcp.close conn);
  Sched.block_on w.sched (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          let off = ref 0 in
          while !off < n do
            let len = Stdlib.min wsize (n - !off) in
            Tcp.write c (View.of_string (String.sub data !off len));
            off := !off + len
          done;
          Sched.sleep w.sched (Time.ms 200);
          Tcp.close c;
          Tcp.await_closed c);
  (!received, data, wire, w.a.stack.Stack.tcp)

(* --- user-library harness: loaned sends through the full org ------------ *)

(* One bulk transfer source->sink through the user-library
   organization, sending through the loaned-buffer path where the
   transmit pool offers a slot (chunks fit [tx_pool_buffer_size]).
   The source's transmit statistics are sampled once the sink has
   drained the payload plus a settle delay — long before TIME_WAIT
   detaches the connection, and late enough that the last data ACK
   (even one retransmission cycle of it) has retired every slot. *)
let ltransfer ?fault ?(network = World.Ethernet) ?(chunk = 2048) ~params n =
  let w =
    World.create ~tcp_params:params ~network ~org:Organization.User_library ()
  in
  (match fault with Some f -> Link.set_fault (World.link w) f | None -> ());
  let sched = World.sched w in
  let source_lib =
    match World.library w ~host:0 "source" with Some l -> l | None -> assert false
  in
  let sink_lib =
    match World.library w ~host:1 "sink" with Some l -> l | None -> assert false
  in
  let source = Protolib.app source_lib and sink = Protolib.app sink_lib in
  let received = Buffer.create n in
  let stats = ref None in
  Sched.spawn sched ~name:"sink" (fun () ->
      let l = sink.Sockets.listen ~port:4000 in
      let conn = l.Sockets.accept () in
      let rec drain () =
        match conn.Sockets.recv_loan ~max:65536 with
        | None -> ()
        | Some v ->
            Buffer.add_string received (View.to_string v);
            conn.Sockets.return_loan v;
            drain ()
      in
      drain ();
      Sched.sleep sched (Time.ms 400);
      stats := Some (Protolib.txstats source_lib);
      conn.Sockets.close ());
  let data = pattern n in
  let loans = ref 0 in
  Sched.block_on sched (fun () ->
      match source.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:4000 with
      | Error e -> failwith ("txpath connect: " ^ e)
      | Ok conn ->
          let off = ref 0 in
          while !off < n do
            let len = Stdlib.min chunk (n - !off) in
            (match conn.Sockets.alloc_tx len with
            | Some owned ->
                View.blit_from_string data !off owned 0 len;
                incr loans;
                conn.Sockets.send_owned owned
            | None -> conn.Sockets.send (View.of_string (String.sub data !off len)));
            off := !off + len
          done;
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  (Buffer.contents received, data, !loans, Option.get !stats)

(* --- tx_gso: wire-identical segmentation offload ------------------------ *)

(* Strict wire-identity needs the segmentation decisions made without
   mid-burst ACK feedback: once ACKs interleave a multi-window
   transfer, the paths re-time their cuts and the same fault seed
   lands on different frames (the burst_ack differential has the same
   shape).  So the oracle run opens the initial window and pushes the
   whole payload — eight whole MSS — in one send episode. *)
let open_cwnd = { Tcp_params.fast with Tcp_params.initial_cwnd_segments = 64 }
let gso_on = { open_cwnd with Tcp_params.tx_gso = true }
let one_window = 8 * 1460

let cuts w = List.sort compare (List.map (fun (_, seq, len) -> (seq, len)) w.departures)

let prop_gso_differential =
  (* The NIC cuts offload episodes at exactly the MSS boundaries the
     per-segment path uses, so the SEGMENTATION must be identical
     under loss, duplication and reordering: byte-identical delivered
     payloads, and the same (seq, len) set of first transmissions —
     the same byte ranges cut at the same places.  Frame-for-frame
     count equality is deliberately NOT claimed under faults: the wire
     is a shared medium, and handing it an episode's frames in one
     atomic run re-orders data against returning ACKs, which re-times
     delayed ACKs and retransmission triggers (the burst_ack
     differential draws the same line).  Counts must still stay within
     a small envelope — equality on a clean link is the deterministic
     test below. *)
  QCheck.Test.make ~name:"tx gso: same cuts, intact payload, bounded counts under faults"
    ~count:8
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let got_on, want, w_on, tcp_on =
        etransfer ~fault:(mk_fault seed) ~wsize:one_window ~params:gso_on one_window
      in
      let got_off, _, w_off, tcp_off =
        etransfer ~fault:(mk_fault seed) ~wsize:one_window ~params:open_cwnd one_window
      in
      String.equal got_on want && String.equal got_off want
      && cuts w_on = cuts w_off
      && abs (w_on.rexmits - w_off.rexmits) <= 4
      && abs (w_on.acks - w_off.acks) <= 6
      && Tcp.gso_sends tcp_on > 0
      && Tcp.gso_sends tcp_off = 0)

let test_gso_wire_identical_clean_link () =
  (* Without faults the ACK stream never races an in-progress burst
     decision, so the full strict claim holds: identical data
     segments, zero retransmissions, identical pure-ACK counts. *)
  let got_on, want, w_on, tcp_on = etransfer ~wsize:one_window ~params:gso_on one_window in
  let got_off, _, w_off, _ = etransfer ~wsize:one_window ~params:open_cwnd one_window in
  check_str "gso delivery intact" want got_on;
  check_str "oracle delivery intact" want got_off;
  check_bool "offload engaged" true (Tcp.gso_sends tcp_on > 0);
  check_bool "identical cuts" true (cuts w_on = cuts w_off);
  check "identical data segments" w_off.data_segs w_on.data_segs;
  check "no retransmissions" 0 (w_on.rexmits + w_off.rexmits);
  check "identical pure ACKs" w_off.acks w_on.acks

let test_gso_fallback_paths () =
  (* A single sub-MSS write never forms an episode: with [tx_gso] on
     it runs entirely on the per-segment path (the fallback counter
     owns the send) and stays wire-identical.  (Repeated small writes
     DO form episodes — Nagle accumulates multi-MSS runs in the send
     queue — which is the offload working as designed, covered by the
     differential above.) *)
  let got_on, want, w_on, tcp_on = etransfer ~wsize:800 ~params:gso_on 800 in
  let got_off, _, w_off, _ = etransfer ~wsize:800 ~params:open_cwnd 800 in
  check_str "gso delivery intact" want got_on;
  check_str "oracle delivery intact" want got_off;
  check "no offload episodes on a sub-MSS write" 0 (Tcp.gso_sends tcp_on);
  check_bool "fallback counter owns the send" true (Tcp.gso_fallbacks tcp_on > 0);
  check "identical data segments" w_off.data_segs w_on.data_segs;
  check "identical pure ACKs" w_off.acks w_on.acks

(* --- tx_complete_coalesce: exactly-once release accounting -------------- *)

let txc_on =
  { Tcp_params.fast with Tcp_params.zero_copy = true; tx_complete_coalesce = true }

let prop_txc_release_exactly_once =
  (* Moderated reaping batches zero-copy releases behind ACKs; under
     faults a slot may be retransmitted from, held longer, reaped in a
     different batch — but every loaned slot fires its release exactly
     once (and the payload the loans carried arrives intact). *)
  QCheck.Test.make ~name:"txc: every loaned slot released exactly once under faults"
    ~count:6
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let got, want, loans, ts = ltransfer ~fault:(mk_fault seed) ~params:txc_on 24_000 in
      String.equal got want
      && loans > 0
      && ts.Protolib.ts_releases = loans
      && ts.Protolib.ts_release_batches > 0
      && ts.Protolib.ts_release_batches <= loans)

let test_txc_batches_on_clean_link () =
  (* Fault-free determinism: releases ride ACK-driven flushes, fewer
     flushes than releases once the stretched cadence retires several
     slots per ACK. *)
  let params = { txc_on with Tcp_params.ack_every = 8 } in
  let got, want, loans, ts = ltransfer ~params 48_000 in
  check_str "delivery intact" want got;
  check "every loan released exactly once" loans ts.Protolib.ts_releases;
  check_bool "releases were batched" true
    (ts.Protolib.ts_release_batches < ts.Protolib.ts_releases)

(* --- pacing: seq order preserved, wire still filled --------------------- *)

let paced =
  { Tcp_params.fast with
    Tcp_params.tx_gso = true;
    pacing = true;
    timer_granularity = Time.ms 1 }

let unpaced = { paced with Tcp_params.pacing = false }

let prop_pacing_order_and_rate =
  (* The pacer only defers sends: bytes still arrive intact under
     faults, first transmissions stay in sequence order on a clean
     link, and spreading bursts must not starve the wire — the paced
     transfer finishes within a small factor of the unpaced one. *)
  QCheck.Test.make ~name:"pacing: in-order departures, delivery intact, wire kept busy"
    ~count:6
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let got_f, want_f, _, _ = etransfer ~fault:(mk_fault seed) ~params:paced 24_000 in
      let got, want, w_on, tcp_on = etransfer ~params:paced 24_000 in
      let _, _, w_off, _ = etransfer ~params:unpaced 24_000 in
      let in_order l =
        let rec go = function
          | a :: (b :: _ as tl) -> Int32.sub b a >= 0l && go tl
          | _ -> true
        in
        go (List.rev_map (fun (_, seq, _) -> seq) l)
      in
      let span l =
        match (List.rev l, l) with
        | (t0, _, _) :: _, (t1, _, _) :: _ -> Time.to_us_f (Time.diff t1 t0)
        | _ -> 0.
      in
      String.equal got_f want_f && String.equal got want
      && in_order w_on.departures
      && Tcp.pacer_waits tcp_on > 0
      && span w_on.departures <= (3. *. span w_off.departures) +. 1_000_000.)

(* --- the composed preset, end to end ------------------------------------ *)

let test_tx_fast_engaged_end_to_end () =
  (* Through the full user-library organization on the fast NIC: the
     offload path forms multi-frame episodes, completion moderation
     reaps descriptors in events, the pacer spreads at least some
     bursts, and the payload survives all three. *)
  let got, want, _, ts =
    ltransfer ~network:World.An1 ~chunk:4096 ~params:Tcp_params.tx_fast 200_000
  in
  check_str "delivery intact" want got;
  check_bool "offload episodes reached the NIC" true (ts.Protolib.ts_gso_episodes > 0);
  check_bool "episodes carried multiple frames" true
    (ts.Protolib.ts_gso_frames > ts.Protolib.ts_gso_episodes);
  check_bool "completion events moderated" true (ts.Protolib.ts_txc_events > 0);
  check_bool "events reaped at least one descriptor each" true
    (ts.Protolib.ts_txc_descs >= ts.Protolib.ts_txc_events);
  check_bool "pacer engaged" true (ts.Protolib.ts_pacer_waits > 0)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "txpath"
    [ ( "tx-gso",
        [ qc prop_gso_differential;
          Alcotest.test_case "wire-identical on a clean link" `Quick
            test_gso_wire_identical_clean_link;
          Alcotest.test_case "sub-MSS writes fall back per-segment" `Quick
            test_gso_fallback_paths ] );
      ( "tx-complete",
        [ qc prop_txc_release_exactly_once;
          Alcotest.test_case "releases batch behind ACKs on a clean link" `Quick
            test_txc_batches_on_clean_link ] );
      ( "pacing", [ qc prop_pacing_order_and_rate ] );
      ( "tx-fast",
        [ Alcotest.test_case "composed preset engages end to end" `Quick
            test_tx_fast_engaged_end_to_end ] ) ]
