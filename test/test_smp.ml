(* SMP host model: multiprocessor machines, receive flow steering,
   lock-contention accounting, and the uniprocessor determinism
   regression (a [~cpus:1] world must behave byte-identically to the
   default one, which is what the committed BENCH files were measured
   on). *)

module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module Rng = Uln_engine.Rng
module Semaphore = Uln_engine.Semaphore
module Mutex = Uln_engine.Mutex
module View = Uln_buf.View
module Machine = Uln_host.Machine
module Cpu = Uln_host.Cpu
module Costs = Uln_host.Costs
module Link = Uln_net.Link
module Fault = Uln_net.Fault
module F = Uln_filter
module Ip = Uln_addr.Ip
module World = Uln_core.World
module Sockets = Uln_core.Sockets
module Organization = Uln_core.Organization
module Protolib = Uln_core.Protolib
module Smp = Uln_workload.Smp

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let pattern n = String.init n (fun i -> Char.chr (((i * 7) + (i / 251)) land 0x7f))

(* --- multiprocessor machines ------------------------------------------- *)

let test_machine_cpus () =
  let sched = Sched.create () in
  let m =
    Machine.create ~cpus:4 sched ~name:"m" ~costs:Costs.zero ~rng:(Rng.create ~seed:1)
  in
  check "four processors" 4 (Machine.num_cpus m);
  check_bool "index 0 is the boot CPU" true (Machine.cpu_at m 0 == m.Machine.cpu);
  check_bool "indices wrap" true (Machine.cpu_at m 5 == Machine.cpu_at m 1);
  check_bool "negative indices wrap" true (Machine.cpu_at m (-1) == Machine.cpu_at m 3);
  check "ids match indices" 2 (Cpu.id (Machine.cpu_at m 2));
  let u =
    Machine.create sched ~name:"u" ~costs:Costs.zero ~rng:(Rng.create ~seed:1)
  in
  check "default machine is a uniprocessor" 1 (Machine.num_cpus u);
  check_bool "every index is the boot CPU" true (Machine.cpu_at u 7 == u.Machine.cpu)

let test_parallel_timelines () =
  (* Work on distinct CPUs overlaps in time; on one CPU it serializes. *)
  let sched = Sched.create () in
  let m =
    Machine.create ~cpus:2 sched ~name:"m" ~costs:Costs.zero ~rng:(Rng.create ~seed:1)
  in
  Sched.spawn sched ~name:"t0" (fun () -> Cpu.use (Machine.cpu_at m 0) (Time.ms 10));
  Sched.spawn sched ~name:"t1" (fun () -> Cpu.use (Machine.cpu_at m 1) (Time.ms 10));
  Sched.run sched;
  check "two CPUs run concurrently" (Time.ms 10) (Time.to_ns (Sched.now sched));
  let sched = Sched.create () in
  let m =
    Machine.create ~cpus:2 sched ~name:"m" ~costs:Costs.zero ~rng:(Rng.create ~seed:1)
  in
  Sched.spawn sched ~name:"t0" (fun () -> Cpu.use (Machine.cpu_at m 0) (Time.ms 10));
  Sched.spawn sched ~name:"t1" (fun () -> Cpu.use (Machine.cpu_at m 0) (Time.ms 10));
  Sched.run sched;
  check "one CPU serializes" (Time.ms 20) (Time.to_ns (Sched.now sched))

let test_migration_accounting () =
  let sched = Sched.create () in
  let m =
    Machine.create ~cpus:2 sched ~name:"m" ~costs:Costs.zero ~rng:(Rng.create ~seed:1)
  in
  let c = Machine.cpu_at m 1 in
  Cpu.note_migration c (Time.ns 500);
  Cpu.note_migration c (Time.ns 700);
  check "migrations counted" 2 (Cpu.migrations c);
  check "penalty attributed" 1200 (Cpu.migrate_ns c);
  check "other CPU untouched" 0 (Cpu.migrations (Machine.cpu_at m 0))

(* --- lock contention accounting ---------------------------------------- *)

let test_semaphore_contention_stats () =
  let sched = Sched.create () in
  let s = Semaphore.create ~name:"test.sem" ~sched () in
  Sched.spawn sched ~name:"waiter" (fun () ->
      Semaphore.wait s;
      Semaphore.wait s);
  Sched.spawn sched ~name:"signaller" (fun () ->
      Sched.sleep sched (Time.ms 1);
      Semaphore.signal s;
      Semaphore.signal s);
  Sched.run sched;
  let st = Semaphore.stats s in
  check "two acquisitions" 2 st.Semaphore.s_acquisitions;
  check "first wait contended, second satisfied" 1 st.Semaphore.s_contended;
  check "blocked time measured" (Time.ms 1) st.Semaphore.s_total_wait_ns;
  check "max wait" (Time.ms 1) st.Semaphore.s_max_wait_ns

let test_try_wait_counts_successes_only () =
  let s = Semaphore.create ~initial:1 () in
  check_bool "first try succeeds" true (Semaphore.try_wait s);
  check_bool "second try fails" false (Semaphore.try_wait s);
  let st = Semaphore.stats s in
  check "only the success is an acquisition" 1 st.Semaphore.s_acquisitions;
  check "try_wait never contends" 0 st.Semaphore.s_contended

let test_mutex_stats_and_registry () =
  let sched = Sched.create () in
  let m = Mutex.create ~name:"test.lock" ~sched () in
  Sched.spawn sched ~name:"a" (fun () ->
      Mutex.with_lock m (fun () -> Sched.sleep sched (Time.ms 2)));
  Sched.spawn sched ~name:"b" (fun () ->
      Mutex.with_lock m (fun () -> Sched.sleep sched (Time.ms 2)));
  Sched.run sched;
  let st = Mutex.stats m in
  check_str "kind" "mutex" st.Semaphore.s_kind;
  check "both lockers acquired" 2 st.Semaphore.s_acquisitions;
  check "second locker contended" 1 st.Semaphore.s_contended;
  check "waited out the critical section" (Time.ms 2)
    st.Semaphore.s_total_wait_ns;
  (* The named lock is in the per-scheduler registry. *)
  let regs = Semaphore.registered ~sched () in
  check_bool "registered under its name" true
    (List.exists (fun (r : Semaphore.stats) -> r.Semaphore.s_name = "test.lock") regs);
  Semaphore.reset_registered ~sched ();
  check "registry cleared for this sched" 0
    (List.length (Semaphore.registered ~sched ()))

(* --- lock-order sanitizer ----------------------------------------------- *)

let test_abba_reported_not_deadlocked () =
  (* The seeded ABBA scenario: thread [fwd] nests kernel-lock -> stack
     lock (the declared, downhill order); thread [rev] nests them the
     other way.  Without the sanitizer the interleaving below is a
     deadlock — each thread blocks holding the lock the other wants.
     With it, the inverted acquire raises {e before} blocking, naming
     both locks and both acquisition sites. *)
  let module LO = Uln_engine.Lock_order in
  let sched = Sched.create () in
  let bkl = Mutex.create ~name:"m.bkl" ~sched () in
  let stk = Mutex.create ~name:"m.stack0.lock" ~sched () in
  LO.set_enforce true;
  LO.reset ();
  let caught = ref None in
  Sched.spawn sched ~name:"fwd" (fun () ->
      Mutex.with_lock ~site:"fwd:outer" bkl (fun () ->
          Sched.sleep sched (Time.ms 2);
          Mutex.with_lock ~site:"fwd:inner" stk (fun () -> ())));
  Sched.spawn sched ~name:"rev" (fun () ->
      Mutex.with_lock ~site:"rev:outer" stk (fun () ->
          Sched.sleep sched (Time.ms 1);
          try Mutex.with_lock ~site:"rev:inner" bkl (fun () -> ())
          with LO.Order_violation v -> caught := Some v));
  Sched.run sched;
  LO.set_enforce false;
  match !caught with
  | None -> Alcotest.fail "inverted acquisition was not reported"
  | Some v ->
      check_str "offending thread" "rev" v.LO.v_thread;
      check_str "lock being acquired" "m.bkl" v.LO.v_lock;
      check_str "acquisition site" "rev:inner" v.LO.v_site;
      check_str "lock already held" "m.stack0.lock" v.LO.v_held;
      check_str "held-lock site" "rev:outer" v.LO.v_held_site;
      check_bool "held rank above acquired rank" true (v.LO.v_held_rank > v.LO.v_rank)

let test_forward_order_clean () =
  (* The same nesting in the declared order never trips the sanitizer,
     across both threads and with reacquisition. *)
  let module LO = Uln_engine.Lock_order in
  let sched = Sched.create () in
  let bkl = Mutex.create ~name:"m.bkl" ~sched () in
  let stk = Mutex.create ~name:"m.stack1.lock" ~sched () in
  LO.set_enforce true;
  LO.reset ();
  (* Distinct names: held-lock stacks are keyed on the thread label, so
     same-named threads would share one. *)
  for i = 1 to 2 do
    Sched.spawn sched ~name:(Printf.sprintf "worker%d" i) (fun () ->
        Mutex.with_lock ~site:"w:outer" bkl (fun () ->
            Sched.sleep sched (Time.ms 1);
            Mutex.with_lock ~site:"w:inner" stk (fun () -> ())))
  done;
  Sched.run sched;
  let vs = LO.violations () in
  LO.set_enforce false;
  check "no violations in declared order" 0 (List.length vs)

(* --- demux receive steering -------------------------------------------- *)

let tcp_pkt ~src_port ~dst_port =
  let v = View.create 54 in
  View.set_uint16 v 12 0x0800;
  View.set_uint8 v 14 0x45;
  View.set_uint8 v 23 6;
  View.set_uint32 v 26 (Ip.to_int32 (Ip.of_string "10.0.0.1"));
  View.set_uint32 v 30 (Ip.to_int32 (Ip.of_string "10.0.0.2"));
  View.set_uint16 v 34 src_port;
  View.set_uint16 v 36 dst_port;
  v

let test_demux_affinity_recorded () =
  let d = F.Demux.create ~mode:F.Demux.Interpreted () in
  let prog = F.Program.tcp_dst_port ~dst_ip:(Ip.of_string "10.0.0.2") ~dst_port:80 in
  let key = F.Demux.install_exn ~affinity:2 d prog "ep" in
  Alcotest.(check (option int)) "affinity recorded" (Some 2) (F.Demux.affinity d key);
  (match F.Demux.dispatch_steered d (tcp_pkt ~src_port:999 ~dst_port:80) with
  | Some (ep, aff), _ ->
      check_str "endpoint" "ep" ep;
      check "steered to CPU 2" 2 aff
  | None, _ -> Alcotest.fail "packet not matched");
  (* Default affinity is the boot CPU. *)
  let k2 =
    F.Demux.install_exn d
      (F.Program.tcp_dst_port ~dst_ip:(Ip.of_string "10.0.0.2") ~dst_port:81)
      "ep2"
  in
  Alcotest.(check (option int)) "default affinity 0" (Some 0) (F.Demux.affinity d k2)

let test_demux_set_affinity_never_stale () =
  (* The stale-CPU hazard lives in the flow cache: prime it, re-pin the
     entry, and every subsequent steered dispatch must report the new
     CPU. *)
  let d = F.Demux.create ~mode:F.Demux.Interpreted ~flow_cache:true () in
  let prog =
    F.Program.tcp_conn ~src_ip:(Ip.of_string "10.0.0.1")
      ~dst_ip:(Ip.of_string "10.0.0.2") ~src_port:1234 ~dst_port:80
  in
  let key = F.Demux.install_exn ~affinity:1 d prog "conn" in
  let pkt = tcp_pkt ~src_port:1234 ~dst_port:80 in
  for _ = 1 to 3 do
    ignore (F.Demux.dispatch_steered d pkt)
  done;
  check_bool "flow cached" true ((F.Demux.cache_stats d).F.Demux.hits > 0);
  F.Demux.set_affinity d key 3;
  (match F.Demux.dispatch_steered d pkt with
  | Some (_, aff), _ -> check "no stale CPU from the cache" 3 aff
  | None, _ -> Alcotest.fail "packet not matched");
  Alcotest.(check (option int)) "accessor agrees" (Some 3) (F.Demux.affinity d key)

let prop_demux_affinity_tracks_set_affinity =
  (* Random interleavings of dispatches and re-pins, cache on: the
     steered CPU must always be the most recently set one. *)
  QCheck.Test.make ~name:"dispatch_steered never reports a stale affinity" ~count:50
    QCheck.(pair (1 -- 1_000_000) (list_of_size Gen.(1 -- 30) (0 -- 7)))
    (fun (seed, pins) ->
      let rng = Rng.create ~seed in
      let d = F.Demux.create ~mode:F.Demux.Interpreted ~flow_cache:true () in
      let prog =
        F.Program.tcp_conn ~src_ip:(Ip.of_string "10.0.0.1")
          ~dst_ip:(Ip.of_string "10.0.0.2") ~src_port:1234 ~dst_port:80
      in
      let key = F.Demux.install_exn d prog "conn" in
      let pkt = tcp_pkt ~src_port:1234 ~dst_port:80 in
      let current = ref 0 in
      List.for_all
        (fun pin ->
          (* A few dispatches (some of which prime or hit the cache),
             then a re-pin, then a dispatch that must see the new CPU. *)
          let ok = ref true in
          for _ = 0 to Rng.int rng 3 do
            match F.Demux.dispatch_steered d pkt with
            | Some (_, aff), _ -> if aff <> !current then ok := false
            | None, _ -> ok := false
          done;
          F.Demux.set_affinity d key pin;
          current := pin;
          (match F.Demux.dispatch_steered d pkt with
          | Some (_, aff), _ -> if aff <> !current then ok := false
          | None, _ -> ok := false);
          !ok)
        pins)

(* --- world-level transfers --------------------------------------------- *)

(* One pinned bulk transfer through a [World]; returns the received
   bytes and the final simulated clock (a strong determinism probe: any
   divergence in event order shifts packet timing). *)
let world_transfer ?cpus ?(cpu = 0) ?(org = Organization.User_library) ?fault
    ?(seed = 1) ?(write_size = 1024) n =
  let w = World.create ?cpus ~seed ~network:World.Ethernet ~org () in
  (match fault with None -> () | Some f -> Link.set_fault (World.link w) f);
  let sched = World.sched w in
  let data = pattern n in
  let received = Buffer.create n in
  let sink = World.app ~cpu w ~host:1 "sink" in
  Sched.spawn sched ~name:"sink" (fun () ->
      let l = sink.Sockets.listen ~port:80 in
      let conn = l.Sockets.accept () in
      let rec drain () =
        match conn.Sockets.recv ~max:65536 with
        | None -> ()
        | Some v ->
            Buffer.add_string received (View.to_string v);
            drain ()
      in
      drain ();
      conn.Sockets.close ());
  let source = World.app ~cpu w ~host:0 "source" in
  Sched.block_on sched (fun () ->
      match source.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
      | Error e -> failwith e
      | Ok conn ->
          let rec send off =
            if off < n then begin
              let len = min write_size (n - off) in
              conn.Sockets.send (View.of_string (String.sub data off len));
              send (off + len)
            end
          in
          send 0;
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  (data, Buffer.contents received, Time.to_ns (Sched.now sched))

(* A pingpong exchange through a [World]; same determinism probe. *)
let world_pingpong ?cpus ?(seed = 1) ~exchanges ~size () =
  let w = World.create ?cpus ~seed ~network:World.Ethernet ~org:Organization.User_library () in
  let sched = World.sched w in
  let server = World.app w ~host:1 "server" in
  Sched.spawn sched ~name:"server" (fun () ->
      let l = server.Sockets.listen ~port:80 in
      let conn = l.Sockets.accept () in
      let rec echo () =
        match conn.Sockets.recv ~max:(2 * size) with
        | None -> ()
        | Some v ->
            conn.Sockets.send v;
            echo ()
      in
      echo ();
      conn.Sockets.close ());
  let client = World.app w ~host:0 "client" in
  let transcript = Buffer.create (exchanges * size) in
  Sched.block_on sched (fun () ->
      match client.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
      | Error e -> failwith e
      | Ok conn ->
          for i = 1 to exchanges do
            conn.Sockets.send (View.of_string (String.make size (Char.chr (i land 0x7f))));
            let rec collect got =
              if got < size then
                match conn.Sockets.recv ~max:size with
                | None -> failwith "echo stream ended early"
                | Some v ->
                    Buffer.add_string transcript (View.to_string v);
                    collect (got + View.length v)
            in
            collect 0
          done;
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  (Buffer.contents transcript, Time.to_ns (Sched.now sched))

let prop_uniproc_determinism =
  (* The SMP generalization must leave the single-CPU world untouched:
     over random scenarios, an explicit [~cpus:1] world reproduces the
     default world's bytes AND its final clock exactly.  200 scenarios
     split across bulk and pingpong shapes. *)
  QCheck.Test.make ~name:"~cpus:1 world is byte- and clock-identical to default" ~count:200
    QCheck.(triple (1 -- 1_000_000) (100 -- 20_000) (1 -- 4))
    (fun (seed, size, shape) ->
      if shape = 1 then begin
        (* pingpong: size doubles as the exchange payload *)
        let exchanges = 1 + (seed mod 5) in
        let psize = 1 + (size mod 1500) in
        let t_def = world_pingpong ~seed ~exchanges ~size:psize () in
        let t_one = world_pingpong ~cpus:1 ~seed ~exchanges ~size:psize () in
        t_def = t_one
      end
      else begin
        let write_size = [| 512; 1024; 4096 |].(shape mod 3) in
        let want, got_def, clock_def = world_transfer ~seed ~write_size size in
        let _, got_one, clock_one = world_transfer ~cpus:1 ~seed ~write_size size in
        String.equal got_def want && String.equal got_one want
        && clock_def = clock_one
      end)

let prop_smp_payload_identical_under_faults =
  (* Loss, duplication and reordering on the wire; the 4-CPU world pins
     the endpoints to CPU 2 so every inbound packet crosses the steering
     path.  Timing may differ from the uniprocessor world; the delivered
     bytes must not. *)
  QCheck.Test.make ~name:"4-CPU delivery = uniprocessor delivery under faults" ~count:10
    QCheck.(pair (1 -- 1_000_000) (5_000 -- 25_000))
    (fun (seed, n) ->
      let mk () =
        Fault.create ~rng:(Rng.create ~seed) ~drop:0.02 ~duplicate:0.02 ~reorder:0.08 ()
      in
      let want, got_uni, _ = world_transfer ~fault:(mk ()) ~seed n in
      let _, got_smp, _ = world_transfer ~cpus:4 ~cpu:2 ~fault:(mk ()) ~seed n in
      String.equal got_uni want && String.equal got_smp want)

let test_inkernel_smp_delivery_intact () =
  (* Both locking disciplines, multiple pinned pairs: every pair's bytes
     arrive complete (port steering delivers each flow to the right
     per-CPU stack). *)
  List.iter
    (fun locking ->
      let r =
        (* A multiple of the workload's 8192-byte write size, so sent =
           requested exactly. *)
        Smp.run ~bytes_per_pair:65_536 ~locking ~org:Organization.In_kernel ~cpus:4
          ~pairs:3 ()
      in
      check
        (Printf.sprintf "all bytes delivered (%s)" r.Smp.r_locking)
        (3 * 65_536) r.Smp.r_bytes)
    [ `Big_lock; `Per_conn ]

let test_single_server_stays_flat () =
  (* The structural claim behind the bench: the single-server
     organization gains nothing from more CPUs. *)
  let run cpus =
    (Smp.run ~bytes_per_pair:100_000 ~org:(Organization.Single_server `Mapped) ~cpus
       ~pairs:2 ())
      .Smp.r_mbps
  in
  let one = run 1 and four = run 4 in
  check_bool "no speedup from 4 CPUs" true (four /. one < 1.2)

let test_userlib_scales () =
  let run cpus =
    (Smp.run ~bytes_per_pair:100_000 ~org:Organization.User_library ~cpus ~pairs:4 ())
      .Smp.r_mbps
  in
  let one = run 1 and four = run 4 in
  check_bool "4 CPUs / 4 pairs at least doubles goodput" true (four /. one > 2.0)

let test_bkl_contention_visible () =
  let r =
    Smp.run ~bytes_per_pair:100_000 ~locking:`Big_lock ~org:Organization.In_kernel
      ~cpus:4 ~pairs:4 ()
  in
  check_bool "big kernel lock measurably contended" true (r.Smp.r_lock_contended > 0);
  check_bool "wait time accounted" true (r.Smp.r_lock_wait_ns > 0);
  let p =
    Smp.run ~bytes_per_pair:100_000 ~locking:`Per_conn ~org:Organization.In_kernel
      ~cpus:4 ~pairs:4 ()
  in
  check "per-stack locks do not contend" 0 p.Smp.r_lock_contended;
  check_bool "per-conn beats the big lock" true (p.Smp.r_mbps > r.Smp.r_mbps)

let test_affinity_change_mid_connection () =
  (* The inetd handoff re-pins a live connection's channel to the new
     library's CPU (Netio.set_channel_affinity + Demux.set_affinity
     mid-stream, flow cache on): the stream must survive with no bytes
     lost to a stale CPU's ring. *)
  let w =
    World.create ~cpus:4 ~flow_cache:true ~network:World.Ethernet
      ~org:Organization.User_library ()
  in
  let sched = World.sched w in
  let inetd = Option.get (World.library ~cpu:1 w ~host:1 "inetd") in
  let worker = Option.get (World.library ~cpu:3 w ~host:1 "worker") in
  let client = World.app w ~host:0 "client" in
  let phase1 = pattern 8_000 and phase2 = pattern 12_000 in
  let got = Buffer.create 20_000 in
  Sched.spawn sched ~name:"inetd" (fun () ->
      let l = (Protolib.app inetd).Sockets.listen ~port:23 in
      let conn = l.Sockets.accept () in
      let rec read_upto want =
        if Buffer.length got < want then
          match conn.Sockets.recv ~max:(want - Buffer.length got) with
          | None -> ()
          | Some v ->
              Buffer.add_string got (View.to_string v);
              read_upto want
      in
      read_upto (String.length phase1);
      (* Quiesce, then hand the live connection to the worker on CPU 3. *)
      Sched.sleep sched (Time.ms 200);
      let conn' = Protolib.pass_connection inetd conn ~to_lib:worker in
      let rec drain () =
        match conn'.Sockets.recv ~max:65536 with
        | None -> ()
        | Some v ->
            Buffer.add_string got (View.to_string v);
            drain ()
      in
      drain ();
      conn'.Sockets.close ());
  Sched.block_on sched (fun () ->
      match client.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:23 with
      | Error e -> failwith e
      | Ok conn ->
          conn.Sockets.send (View.of_string phase1);
          (* Pause across the handoff window. *)
          Sched.sleep sched (Time.ms 500);
          conn.Sockets.send (View.of_string phase2);
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  check_str "stream intact across the re-pin" (phase1 ^ phase2) (Buffer.contents got)

let () =
  Alcotest.run "smp"
    [ ( "machine",
        [ Alcotest.test_case "cpu array" `Quick test_machine_cpus;
          Alcotest.test_case "parallel timelines" `Quick test_parallel_timelines;
          Alcotest.test_case "migration accounting" `Quick test_migration_accounting ] );
      ( "locks",
        [ Alcotest.test_case "semaphore stats" `Quick test_semaphore_contention_stats;
          Alcotest.test_case "try_wait" `Quick test_try_wait_counts_successes_only;
          Alcotest.test_case "mutex stats + registry" `Quick test_mutex_stats_and_registry;
          Alcotest.test_case "ABBA reported, not deadlocked" `Quick
            test_abba_reported_not_deadlocked;
          Alcotest.test_case "declared order stays clean" `Quick
            test_forward_order_clean ] );
      ( "steering",
        [ Alcotest.test_case "affinity recorded" `Quick test_demux_affinity_recorded;
          Alcotest.test_case "re-pin flushes cache" `Quick test_demux_set_affinity_never_stale;
          QCheck_alcotest.to_alcotest prop_demux_affinity_tracks_set_affinity;
          Alcotest.test_case "mid-connection re-pin" `Quick
            test_affinity_change_mid_connection ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_uniproc_determinism;
          QCheck_alcotest.to_alcotest prop_smp_payload_identical_under_faults ] );
      ( "scaling",
        [ Alcotest.test_case "inkernel delivery intact" `Quick
            test_inkernel_smp_delivery_intact;
          Alcotest.test_case "single server flat" `Quick test_single_server_stays_flat;
          Alcotest.test_case "userlib scales" `Quick test_userlib_scales;
          Alcotest.test_case "bkl contention" `Quick test_bkl_contention_visible ] ) ]
