(* Connection-churn fast path: TIME_WAIT wheel semantics, endpoint
   lease port accounting, the pipelined IPC primitive, and a
   differential check that the overlapped/pooled/leased setup path is
   wire-identical to the sequential oracle. *)

module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module Rng = Uln_engine.Rng
module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Machine = Uln_host.Machine
module Cpu = Uln_host.Cpu
module Costs = Uln_host.Costs
module Ipc = Uln_host.Ipc
module Link = Uln_net.Link
module Frame = Uln_net.Frame
module Fault = Uln_net.Fault
module Stack = Uln_proto.Stack
module Tcp = Uln_proto.Tcp
module Tcp_params = Uln_proto.Tcp_params
module World = Uln_core.World
module Sockets = Uln_core.Sockets
module Registry = Uln_core.Registry
module Protolib = Uln_core.Protolib
module Organization = Uln_core.Organization

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let wheel_params = { Tcp_params.fast with Tcp_params.time_wait_wheel = true }
let two_msl = Time.span_scale wheel_params.Tcp_params.msl 2

let make_world ?(tcp_params = wheel_params) () =
  World.create ~network:World.Ethernet ~org:Organization.User_library ~tcp_params
    ~num_hosts:2 ()

let registry_tcp r = (Registry.stack r).Stack.tcp

(* Server side for the wheel tests: accept [conns] connections, drain
   each to EOF (or error) and close. *)
let spawn_server w ~port ~conns =
  let app = World.app w ~host:1 "srv" in
  Sched.spawn (World.sched w) ~name:"srv" (fun () ->
      let l = app.Sockets.listen ~port in
      for _ = 1 to conns do
        let c = l.Sockets.accept () in
        let rec drain () =
          match c.Sockets.recv ~max:4096 with Some _ -> drain () | None -> ()
        in
        (* A reset from the peer (the abnormal-exit sweep) is a normal
           outcome here, not a server failure. *)
        (try
           drain ();
           c.Sockets.close ()
         with Tcp.Connection_error _ -> ())
      done)

(* Abnormal exit with the wheel on: the registry retires the inherited
   connection with the batched RST sweep — exactly one RST on the wire,
   and nothing parks on the wheel. *)
let test_abnormal_exit_one_rst () =
  let w = make_world () in
  let sched = World.sched w in
  let r0 = Option.get (World.registry w 0) in
  spawn_server w ~port:7000 ~conns:1;
  let app = World.app w ~host:0 "cli" in
  let rst_delta = ref (-1) in
  Sched.block_on sched (fun () ->
      match app.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:7000 with
      | Error e -> failwith e
      | Ok _conn ->
          let before = Tcp.rsts_out (registry_tcp r0) in
          app.Sockets.exit_app ~graceful:false;
          (* Long enough for any (erroneous) retransmission to show. *)
          Sched.sleep sched (Time.ms 500);
          rst_delta := Tcp.rsts_out (registry_tcp r0) - before);
  check "exactly one RST" 1 !rst_delta;
  check "nothing parked on the wheel" 0 (Registry.time_wait_stats r0).Registry.tw_parked_total

(* Graceful exit: the inherited connection closes cleanly and its 2MSL
   residue parks on the wheel, holding the port for the full quiet
   period — still parked halfway through, gone after expiry. *)
let test_graceful_exit_holds_time_wait () =
  let w = make_world () in
  let sched = World.sched w in
  let r0 = Option.get (World.registry w 0) in
  spawn_server w ~port:7001 ~conns:1;
  let app = World.app w ~host:0 "cli" in
  let at_half = ref (-1) and after = ref (-1) and parked = ref (-1) in
  Sched.block_on sched (fun () ->
      match app.Sockets.connect ~src_port:51234 ~dst:(World.host_ip w 1) ~dst_port:7001 with
      | Error e -> failwith e
      | Ok _conn ->
          app.Sockets.exit_app ~graceful:true;
          (* Let the FIN exchange finish and the residue park. *)
          Sched.sleep sched (Time.ms 200);
          parked := (Registry.time_wait_stats r0).Registry.tw_parked_total;
          Sched.sleep sched (Time.span_scale two_msl 1 / 2);
          at_half := (Registry.time_wait_stats r0).Registry.tw_pending;
          Sched.sleep sched (Time.span_add two_msl (Time.ms 200));
          after := (Registry.time_wait_stats r0).Registry.tw_pending);
  check "residue parked" 1 !parked;
  check "still in TIME_WAIT at MSL" 1 !at_half;
  check "expired after 2MSL" 0 !after

(* The parked residue holds its port: reconnecting from the same source
   port fails while the wheel entry lives and succeeds after expiry. *)
let test_port_reuse_after_expiry () =
  let w = make_world () in
  let sched = World.sched w in
  spawn_server w ~port:7002 ~conns:2;
  let app = World.app w ~host:0 "cli" in
  let app2 = World.app w ~host:0 "cli2" in
  let held = ref false and reused = ref false in
  Sched.block_on sched (fun () ->
      (match app.Sockets.connect ~src_port:51235 ~dst:(World.host_ip w 1) ~dst_port:7002 with
      | Error e -> failwith e
      | Ok _conn -> app.Sockets.exit_app ~graceful:true);
      Sched.sleep sched (Time.ms 200);
      (match app2.Sockets.connect ~src_port:51235 ~dst:(World.host_ip w 1) ~dst_port:7002 with
      | Error _ -> held := true
      | Ok _ -> ());
      Sched.sleep sched (Time.span_add two_msl (Time.ms 500));
      match app2.Sockets.connect ~src_port:51235 ~dst:(World.host_ip w 1) ~dst_port:7002 with
      | Error _ -> ()
      | Ok c ->
          reused := true;
          c.Sockets.close ());
  check_bool "port held while parked" true !held;
  check_bool "port reusable after expiry" true !reused

(* Endpoint leases carve the 49152..65535 range into fixed blocks; when
   they are all granted the registry returns the typed Out_of_ports
   error, and releasing a lease makes a grant possible again. *)
let test_lease_exhaustion_and_release () =
  let w = make_world ~tcp_params:Tcp_params.fast () in
  let sched = World.sched w in
  let r0 = Option.get (World.registry w 0) in
  let dom = Machine.new_user_domain (World.machine w 0) "leasehog" in
  let grants = ref [] in
  let exhausted = ref false and regranted = ref false in
  Sched.block_on sched (fun () ->
      let rec grab () =
        match Ipc.call (Registry.lease_port r0) ~size:32 dom with
        | Ok g ->
            grants := g :: !grants;
            grab ()
        | Error Registry.Out_of_ports -> exhausted := true
      in
      grab ();
      Ipc.call (Registry.release_lease_port r0) ~size:32 (List.hd !grants);
      match Ipc.call (Registry.lease_port r0) ~size:32 dom with
      | Ok _ -> regranted := true
      | Error Registry.Out_of_ports -> ());
  check_bool "typed exhaustion error" true !exhausted;
  check "whole ephemeral range granted" (16384 / Uln_core.Calibration.lease_block_ports)
    (List.length !grants);
  check_bool "grant succeeds after a release" true !regranted

(* Pipelined IPC: posts overlap the server's processing; replies land in
   promises and can be awaited in any order.  One-way ports never send a
   reply but still resolve the promise when the handler runs. *)
let test_ipc_post_await () =
  let sched = Sched.create () in
  let cpu = Cpu.create sched ~name:"srv_cpu" in
  let port = Ipc.create sched cpu Costs.r3000 ~name:"double" in
  Ipc.serve port (fun x -> (x * 2, 8));
  let oneway = Ipc.create sched cpu Costs.r3000 ~name:"tell" in
  let told = ref 0 in
  Ipc.serve_oneway oneway (fun x -> told := !told + x);
  let got = ref [] in
  Sched.block_on sched (fun () ->
      let ps = List.map (fun x -> Ipc.post port ~size:8 x) [ 1; 2; 3 ] in
      got := List.map (fun p -> Ipc.await port p) ps;
      ignore (Ipc.post oneway ~size:8 41);
      ignore (Ipc.post oneway ~size:8 1);
      Sched.sleep sched (Time.ms 5));
  Alcotest.(check (list int)) "pipelined replies in order" [ 2; 4; 6 ] !got;
  check "one-way messages all processed" 42 !told

(* --- differential: fast-path setup vs the sequential oracle ----------- *)

let fast_cfg =
  { Tcp_params.fast with
    Tcp_params.overlap_setup = true;
    channel_pool = true;
    endpoint_lease = true }

let pattern n =
  String.init n (fun i -> Char.chr (((i * 31) + (i / 251)) land 0x7f))

(* One client->server bulk transfer through the full organization
   (registry, channels, library engines).  Returns what the server read,
   the number of TCP segments that crossed the wire (counted before
   fault injection, so retransmissions included), and how many connects
   used the lease.

   Faults are armed only once the connection is established and the
   setup plane has gone quiet.  The setup configurations legitimately
   shift *when* the first writes land relative to the handshake (the
   overlapped build keeps charging the client CPU briefly after connect
   returns), and the injector draws its RNG per delivered frame — so
   faulting from frame one would compare two different fault patterns,
   not two setup paths.  From a settled connection both configurations
   face an identical frame sequence, and the oracle comparison is
   exact. *)
let transfer ?fault ~params ~seed n =
  let w =
    World.create ~network:World.Ethernet ~org:Organization.User_library ~tcp_params:params
      ~num_hosts:2 ()
  in
  let sched = World.sched w in
  let tcp_segs = ref 0 in
  Link.set_monitor (World.link w) (fun _ fr ->
      if fr.Frame.ethertype = Frame.ethertype_ip && Mbuf.length fr.Frame.payload >= 20 then begin
        let hdr = Mbuf.flatten (Mbuf.take fr.Frame.payload 20) in
        if View.get_uint8 hdr 9 = 6 then incr tcp_segs
      end);
  let received = Buffer.create n in
  let srv = World.app w ~host:1 "srv" in
  let srv_done = ref false in
  Sched.spawn sched ~name:"srv" (fun () ->
      let l = srv.Sockets.listen ~port:8080 in
      let c = l.Sockets.accept () in
      let rec drain () =
        match c.Sockets.recv ~max:4096 with
        | Some v ->
            Buffer.add_string received (View.to_string v);
            drain ()
        | None -> ()
      in
      drain ();
      c.Sockets.close ();
      srv_done := true);
  let lib = Option.get (World.library w ~host:0 "cli") in
  let cli = Protolib.app lib in
  let data = pattern n in
  Sched.block_on sched (fun () ->
      (match cli.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:8080 with
      | Error e -> failwith e
      | Ok c ->
          Sched.sleep sched (Time.ms 50);
          (match fault with Some f -> Link.set_fault (World.link w) f | None -> ());
          let rng = Rng.create ~seed in
          let pos = ref 0 in
          while !pos < n do
            let len = Stdlib.min (n - !pos) (1 + Rng.int rng 2000) in
            c.Sockets.send (View.of_string (String.sub data !pos len));
            pos := !pos + len
          done;
          c.Sockets.close ();
          c.Sockets.await_closed ());
      (* Let the server's close tail and any duplicate deliveries die. *)
      Sched.sleep sched (Time.ms 500));
  check_bool "server finished" true !srv_done;
  ( Buffer.contents received,
    !tcp_segs,
    (Protolib.leasestats lib).Protolib.lst_leased_connects )

let test_fastpath_clean_link () =
  let n = 30_000 in
  let got_f, segs_f, leased = transfer ~params:fast_cfg ~seed:7 n in
  let got_s, segs_s, oracle_leased = transfer ~params:Tcp_params.fast ~seed:7 n in
  Alcotest.(check string) "fast path delivers the payload" (pattern n) got_f;
  Alcotest.(check string) "oracle delivers the payload" (pattern n) got_s;
  check "identical segment counts" segs_s segs_f;
  check_bool "lease actually exercised" true (leased > 0);
  check "oracle never leases" 0 oracle_leased

let prop_fastpath_equivalent_under_faults =
  (* Loss, duplication and reordering hit the data and close phases of a
     connection the fast path set up; whatever retransmission pattern
     results, the setup must be invisible on the wire afterwards:
     byte-identical delivery and equal segment counts against the
     sequential oracle.  (Setup itself is compared on the clean link
     above, where the whole trace is deterministic.) *)
  QCheck.Test.make ~name:"overlap+pool+lease setup = sequential oracle under faults"
    ~count:5
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let mk () =
        Fault.create ~rng:(Rng.create ~seed) ~drop:0.02 ~duplicate:0.02 ~reorder:0.08 ()
      in
      let n = 20_000 in
      let got_f, segs_f, leased = transfer ~fault:(mk ()) ~params:fast_cfg ~seed n in
      let got_s, segs_s, _ = transfer ~fault:(mk ()) ~params:Tcp_params.fast ~seed n in
      String.equal got_f (pattern n)
      && String.equal got_s (pattern n)
      && segs_f = segs_s && leased > 0)

let () =
  Alcotest.run "churn"
    [ ( "time-wait-wheel",
        [ Alcotest.test_case "abnormal exit: one RST" `Quick test_abnormal_exit_one_rst;
          Alcotest.test_case "graceful exit holds TIME_WAIT" `Quick
            test_graceful_exit_holds_time_wait;
          Alcotest.test_case "port reuse after expiry" `Quick test_port_reuse_after_expiry ] );
      ( "leases",
        [ Alcotest.test_case "exhaustion is typed and recoverable" `Quick
            test_lease_exhaustion_and_release ] );
      ( "ipc",
        [ Alcotest.test_case "post/await pipeline" `Quick test_ipc_post_await ] );
      ( "differential",
        [ Alcotest.test_case "clean link" `Quick test_fastpath_clean_link;
          QCheck_alcotest.to_alcotest prop_fastpath_equivalent_under_faults ] ) ]
