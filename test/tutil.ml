(* Shared helpers for the test suites. *)

module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module Rng = Uln_engine.Rng
module Mailbox = Uln_engine.Mailbox
module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Ip = Uln_addr.Ip
module Mac = Uln_addr.Mac
module Machine = Uln_host.Machine
module Costs = Uln_host.Costs
module Link = Uln_net.Link
module Lance = Uln_net.Lance
module An1_nic = Uln_net.An1_nic
module Nic = Uln_net.Nic
module Frame = Uln_net.Frame
module Fault = Uln_net.Fault
module Stack = Uln_proto.Stack
module Proto_env = Uln_proto.Proto_env
module Tcp = Uln_proto.Tcp
module Tcp_params = Uln_proto.Tcp_params
module Udp = Uln_proto.Udp
module Icmp = Uln_proto.Icmp

type node = { machine : Machine.t; nic : Nic.t; stack : Stack.t; ip : Ip.t }

(* A host with one NIC and one directly-attached stack instance (no
   protection structure: this exercises the protocol engines alone). *)
let make_node sched link ~name ~mac_seed ~ip ~costs ~tcp_params =
  let machine = Machine.create sched ~name ~costs ~rng:(Rng.create ~seed:(1000 + mac_seed)) in
  let mac = Mac.of_int (0x5254000000 + mac_seed) in
  let nic = Lance.create machine link ~mac () in
  let env =
    Proto_env.of_machine
      ~timer_granularity:tcp_params.Tcp_params.timer_granularity machine
  in
  let stack =
    Stack.create env
      ~netif:{ Stack.mtu = nic.Nic.mtu; mac; tx = nic.Nic.send }
      ~ip_addr:ip ~tcp_params ()
  in
  let rxq = Mailbox.create () in
  nic.Nic.install_rx (fun info -> Mailbox.send rxq info.Nic.frame);
  let rec rx_loop () =
    let frame = Mailbox.recv rxq in
    Stack.input stack frame;
    rx_loop ()
  in
  Sched.spawn sched ~name:(name ^ ".rx") rx_loop;
  { machine; nic; stack; ip }

type world = { sched : Sched.t; link : Link.t; a : node; b : node }

let make_world ?(costs = Costs.zero) ?(tcp_params = Tcp_params.fast) ?fault () =
  let sched = Sched.create () in
  let link = Link.ethernet sched in
  (match fault with None -> () | Some f -> Link.set_fault link f);
  let a =
    make_node sched link ~name:"alpha" ~mac_seed:1 ~ip:(Ip.of_string "10.0.0.1") ~costs
      ~tcp_params
  in
  let b =
    make_node sched link ~name:"beta" ~mac_seed:2 ~ip:(Ip.of_string "10.0.0.2") ~costs
      ~tcp_params
  in
  { sched; link; a; b }

let run_to_completion w f = Sched.block_on w.sched f

(* Read exactly [n] bytes from a TCP connection. *)
let read_exactly conn n =
  let buf = Buffer.create n in
  let rec go () =
    if Buffer.length buf < n then
      match Tcp.read conn ~max:(n - Buffer.length buf) with
      | None -> failwith "unexpected EOF"
      | Some v ->
          Buffer.add_string buf (View.to_string v);
          go ()
  in
  go ();
  Buffer.contents buf

(* Drain a connection to EOF. *)
let read_all conn =
  let buf = Buffer.create 256 in
  let rec go () =
    match Tcp.read conn ~max:65536 with
    | None -> Buffer.contents buf
    | Some v ->
        Buffer.add_string buf (View.to_string v);
        go ()
  in
  go ()

let pattern n =
  String.init n (fun i -> Char.chr (((i * 7) + (i / 251)) land 0x7f))
