(* MUST NOT COMPILE: option negotiation outside the handshake.  MSS,
   window scale, SACK-permitted and timestamps commit on SYN/SYN-ACK
   segments only — [Fsm.negotiate_options] accepts LISTEN, SYN_SENT and
   SYN_RCVD witnesses, so an ESTABLISHED witness cannot mint an
   [option_permit] and the negotiated values are frozen for the life of
   the connection. *)
module Fsm = Uln_proto.Tcp_fsm

let () =
  let est = Fsm.step (Fsm.step (Fsm.closed ()) Fsm.Active_open) Fsm.Rcv_syn_ack in
  let _ : Fsm.option_permit = Fsm.negotiate_options est in
  ()
