(* MUST NOT COMPILE: a data-send permit demanded before the handshake
   completes.  [Fsm.send_data] accepts only ESTABLISHED or CLOSE_WAIT
   witnesses; SYN_SENT is neither. *)
module Fsm = Uln_proto.Tcp_fsm

let () =
  let syn_sent = Fsm.step (Fsm.closed ()) Fsm.Active_open in
  let _ : Fsm.send_permit = Fsm.send_data syn_sent in
  ()
