(* Sanity check for the compile-fail harness: the full passive-open
   lifecycle, typed end to end.  If this snippet stops compiling, the
   harness flags are wrong and the bad_* rejections prove nothing. *)
module Fsm = Uln_proto.Tcp_fsm

let () =
  let listen = Fsm.step (Fsm.closed ()) Fsm.Passive_open in
  let syn_rcvd = Fsm.step listen Fsm.Rcv_syn in
  (* BQI hints and option negotiation are a handshake affair: fine
     from SYN_RCVD. *)
  let _bqi : Fsm.bqi_permit = Fsm.bqi_exchange syn_rcvd in
  let _opt : Fsm.option_permit = Fsm.negotiate_options syn_rcvd in
  let est = Fsm.step syn_rcvd Fsm.Rcv_ack_of_syn in
  (* Data may flow once ESTABLISHED. *)
  let _send : Fsm.send_permit = Fsm.send_data est in
  let fin_wait_1 = Fsm.step est Fsm.Send_fin_established in
  let fin_wait_2 = Fsm.step fin_wait_1 Fsm.Fin_acked_fin_wait_1 in
  let time_wait = Fsm.step fin_wait_2 Fsm.Rcv_fin_fin_wait_2 in
  let _gone = Fsm.step time_wait Fsm.Expire_2msl in
  ()
