(* MUST NOT COMPILE: a BQI exchange after the handshake.  Hints ride
   only on handshake segments, so [Fsm.bqi_exchange] accepts LISTEN,
   SYN_SENT and SYN_RCVD witnesses — not ESTABLISHED. *)
module Fsm = Uln_proto.Tcp_fsm

let () =
  let est = Fsm.step (Fsm.step (Fsm.closed ()) Fsm.Active_open) Fsm.Rcv_syn_ack in
  let _ : Fsm.bqi_permit = Fsm.bqi_exchange est in
  ()
