(* MUST NOT COMPILE: TIME_WAIT resurrection.  Expiring the 2MSL timer
   retires the witness to the terminal [`Gone] index, which has no
   outgoing transitions — in particular it is not [`Closed], so a
   retired endpoint cannot be reopened. *)
module Fsm = Uln_proto.Tcp_fsm

let () =
  let fin_wait_1 =
    Fsm.step
      (Fsm.step (Fsm.step (Fsm.closed ()) Fsm.Active_open) Fsm.Rcv_syn_ack)
      Fsm.Send_fin_established
  in
  let time_wait =
    Fsm.step (Fsm.step fin_wait_1 Fsm.Fin_acked_fin_wait_1) Fsm.Rcv_fin_fin_wait_2
  in
  let gone = Fsm.step time_wait Fsm.Expire_2msl in
  let _ = Fsm.step gone Fsm.Active_open in
  ()
