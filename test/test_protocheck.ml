(* The proto-check analysis pass, and the session-typed FSM it checks:
   the green path on the real tree, the seeded failure paths (the lint
   must be able to fail), witness linearity and the shadow oracle, and
   the predicate/relation consistency property. *)

open Tutil
module State = Uln_proto.Tcp_state
module Fsm = Uln_proto.Tcp_fsm
module PC = Uln_protocheck.Proto_check

let check_bool = Alcotest.(check bool)

let failing findings = List.filter (fun f -> not f.PC.f_ok) findings

let has_failure findings name =
  List.exists (fun f -> f.PC.f_check = name) (failing findings)

(* --- the analysis pass ------------------------------------------------ *)

let test_fsm_green () =
  let fs = PC.check_fsm () in
  check_bool "fsm checks pass on the real relation" true (PC.ok fs);
  check_bool "nonempty" true (fs <> [])

let test_fsm_seeded_unhandled_fails () =
  let fs = PC.check_fsm ~seed_unhandled:true () in
  check_bool "seeded hole detected" true (has_failure fs "fsm-exhaustive");
  (* Only the tiling breaks; dispatch conformance is judged against the
     same (seeded) view, so the seed isolates the check under test. *)
  check_bool "reachability untouched" false (has_failure fs "fsm-reachable")

let test_locks_green () =
  let fs = PC.check_locks () in
  check_bool "lock checks pass on the declared hierarchy" true (PC.ok fs)

let test_locks_seeded_cycle_fails () =
  let fs = PC.check_locks ~seed_cycle:true () in
  check_bool "inverted edge detected" true (has_failure fs "lock-monotone");
  check_bool "cycle detected" true (has_failure fs "lock-acyclic")

(* --- witness linearity and typed flows -------------------------------- *)

let test_witness_linear () =
  let w = Fsm.closed () in
  let listen = Fsm.step w Fsm.Passive_open in
  check_bool "stepped to LISTEN" true (Fsm.state_of listen = State.Listen);
  (* The same witness again: dynamically linear, so the alias is dead. *)
  check_bool "spent witness refused" true
    (try
       ignore (Fsm.step w Fsm.Active_open);
       false
     with Fsm.Violation (Fsm.Reused _) -> true)

let test_packed_wrong_source () =
  let p = Fsm.Packed.active_open () in
  check_bool "SYN_SENT" true (Fsm.Packed.state p = State.Syn_sent);
  check_bool "wrong-source transition refused" true
    (try
       ignore (Fsm.Packed.apply p Fsm.Rcv_ack_of_syn);
       false
     with Fsm.Violation (Fsm.Wrong_source _) -> true)

let test_shadow_divergence_raises () =
  let p = Fsm.Packed.active_open () in
  Fsm.Packed.check_shadow p State.Syn_sent;
  check_bool "divergent shadow refused" true
    (try
       Fsm.Packed.check_shadow p State.Established;
       false
     with Fsm.Violation (Fsm.Shadow_divergence _) -> true)

let test_permits_follow_state () =
  let p = Fsm.Packed.active_open () in
  check_bool "no send permit in SYN_SENT" true (Fsm.Packed.send_permit p = None);
  check_bool "bqi permit in SYN_SENT" true (Fsm.Packed.bqi_permit p <> None);
  let p = Fsm.Packed.apply p Fsm.Rcv_syn_ack in
  check_bool "send permit in ESTABLISHED" true (Fsm.Packed.send_permit p <> None);
  check_bool "no bqi permit in ESTABLISHED" true (Fsm.Packed.bqi_permit p = None);
  let p = Fsm.Packed.retire p ~clean:false in
  check_bool "retired witness shadows CLOSED" true (Fsm.Packed.state p = State.Closed);
  check_bool "no permits after retirement" true
    (Fsm.Packed.send_permit p = None && Fsm.Packed.bqi_permit p = None)

(* --- the shadow oracle is exercised by real traffic ------------------- *)

let test_shadow_oracle_exercised () =
  Fsm.reset_counters ();
  let w = make_world () in
  let received = ref "" in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _witness = Tcp.accept l in
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _witness) ->
          Tcp.write c (View.of_string "through the witness");
          Tcp.close c;
          Tcp.await_closed c);
  Alcotest.(check string) "payload" "through the witness" !received;
  (* A full handshake + orderly release on both sides: at least
     Closed->{Listen,Syn_sent} and on through the FIN exchange.  The
     exact count is the FSM's business; that it is substantial — and
     that every step also ran a shadow comparison — is the oracle's. *)
  check_bool "witness transitions applied" true (Fsm.transitions_applied () >= 10);
  check_bool "shadow checks ran" true (Fsm.shadow_checks_made () >= 10)

(* --- predicate/relation consistency (qcheck) -------------------------- *)

let arb_state = QCheck.oneofl ~print:State.to_string State.all

let prop_predicates_consistent =
  QCheck.Test.make ~name:"Tcp_state predicates are mutually consistent and mirror the FSM"
    ~count:200 arb_state (fun s ->
      (* Implications among the predicates themselves. *)
      ((not (State.can_send_data s)) || State.synchronized s)
      && ((not (State.have_received_fin s)) || State.synchronized s)
      && ((not (State.can_receive_data s)) || not (State.have_received_fin s))
      (* The typed permit rows are the same sets. *)
      && List.mem s Fsm.send_states = State.can_send_data s
      && List.mem s Fsm.recv_states = State.can_receive_data s
      && List.mem s Fsm.bqi_states = ((not (State.synchronized s)) && s <> State.Closed))

let prop_relation_respects_predicates =
  (* Along every declared edge: receiving a FIN lands in a state that
     remembers it, and no edge leaves a FIN-seen state for a state that
     has forgotten it (the engine reports EOF exactly once). *)
  QCheck.Test.make ~name:"declared edges preserve FIN knowledge" ~count:50
    (QCheck.oneofl Fsm.edges) (fun e ->
      (e.Fsm.e_event <> Fsm.Ev_rcv_fin || State.have_received_fin e.Fsm.e_to)
      && ((not (State.have_received_fin e.Fsm.e_from))
         || e.Fsm.e_to = State.Closed
         || State.have_received_fin e.Fsm.e_to))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run ~and_exit:false "protocheck"
    [ ( "analysis",
        [ Alcotest.test_case "fsm checks green" `Quick test_fsm_green;
          Alcotest.test_case "seeded unhandled pair fails" `Quick
            test_fsm_seeded_unhandled_fails;
          Alcotest.test_case "lock checks green" `Quick test_locks_green;
          Alcotest.test_case "seeded lock cycle fails" `Quick
            test_locks_seeded_cycle_fails ] );
      ( "witnesses",
        [ Alcotest.test_case "witnesses are linear" `Quick test_witness_linear;
          Alcotest.test_case "wrong-source refused" `Quick test_packed_wrong_source;
          Alcotest.test_case "shadow divergence raises" `Quick
            test_shadow_divergence_raises;
          Alcotest.test_case "permits follow state" `Quick test_permits_follow_state;
          Alcotest.test_case "shadow oracle exercised by live traffic" `Quick
            test_shadow_oracle_exercised ] );
      ( "properties",
        [ qc prop_predicates_consistent; qc prop_relation_respects_predicates ] ) ]
