(* The request-response transport: transactional reliability,
   at-most-once execution, coexistence with TCP, and its behaviour under
   every protocol organization. *)

open Tutil
module Rrp = Uln_proto.Rrp
module Rng = Uln_engine.Rng
module World = Uln_core.World
module Organization = Uln_core.Organization
module Sockets = Uln_core.Sockets

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* --- engine level ------------------------------------------------------ *)

let test_basic_transaction () =
  let w = make_world () in
  let got =
    run_to_completion w (fun () ->
        let _srv =
          Rrp.serve w.b.stack.Stack.rrp ~port:300 (fun req ->
              View.of_string ("echo:" ^ View.to_string req))
        in
        match Rrp.call w.a.stack.Stack.rrp ~src_port:40001 ~dst:w.b.ip ~dst_port:300
                (View.of_string "ping")
        with
        | Ok r -> View.to_string r
        | Error e -> failwith e)
  in
  check_s "response" "echo:ping" got

let test_call_to_dead_port_times_out () =
  let w = make_world () in
  let r =
    run_to_completion w (fun () ->
        Rrp.call w.a.stack.Stack.rrp ~src_port:40001 ~dst:w.b.ip ~dst_port:301
          (View.of_string "anyone?"))
  in
  check_bool "timed out" true (Result.is_error r);
  check "failure counted" 1 (Rrp.calls_failed w.a.stack.Stack.rrp)

let test_at_most_once_under_loss () =
  (* 12% drop: requests and responses get lost, clients retransmit — but
     every transaction must execute exactly once. *)
  let rng = Rng.create ~seed:31 in
  let w = make_world ~fault:(Fault.create ~rng ~drop:0.12 ()) () in
  let executions = ref 0 in
  let calls = 30 in
  let ok = ref 0 in
  run_to_completion w (fun () ->
      let _srv =
        Rrp.serve w.b.stack.Stack.rrp ~port:300 (fun req ->
            incr executions;
            req)
      in
      for i = 1 to calls do
        match
          Rrp.call w.a.stack.Stack.rrp ~src_port:40001 ~dst:w.b.ip ~dst_port:300
            (View.of_string (Printf.sprintf "txn-%d" i))
        with
        | Ok _ -> incr ok
        | Error _ -> ()
      done);
  check_bool "most calls completed" true (!ok >= calls - 3);
  check "each executed exactly once" !ok !executions;
  check_bool "retransmissions happened" true
    (Rrp.client_retransmissions w.a.stack.Stack.rrp > 0);
  check_bool "duplicates answered from cache or lost" true
    (Rrp.duplicates_answered_from_cache w.b.stack.Stack.rrp >= 0)

let test_coexists_with_tcp () =
  (* The multiplicity claim: an RRP server and a TCP transfer run on the
     same stacks at the same time, undisturbed. *)
  let w = make_world () in
  let tcp_received = ref "" in
  let rrp_ok = ref 0 in
  Sched.spawn w.sched ~name:"tcp-server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      tcp_received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let _srv = Rrp.serve w.b.stack.Stack.rrp ~port:300 (fun req -> req) in
      let c =
        match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
        | Ok (c, _) -> c
        | Error e -> failwith e
      in
      Sched.spawn w.sched ~name:"bulk" (fun () ->
          Tcp.write c (View.of_string (pattern 60_000));
          Tcp.close c);
      for _ = 1 to 10 do
        match
          Rrp.call w.a.stack.Stack.rrp ~src_port:40001 ~dst:w.b.ip ~dst_port:300
            (View.of_string "rpc")
        with
        | Ok _ -> incr rrp_ok
        | Error _ -> ()
      done;
      Tcp.await_closed c);
  check "tcp stream complete" 60_000 (String.length !tcp_received);
  check "all rpcs answered" 10 !rrp_ok

(* --- across organizations ---------------------------------------------- *)

let orgs =
  [ ("inkernel", Organization.In_kernel);
    ("server", Organization.Single_server `Mapped);
    ("dedicated", Organization.Dedicated_servers);
    ("userlib", Organization.User_library) ]

let rrp_org_case (label, org) =
  Alcotest.test_case (label ^ " rrp roundtrip") `Quick (fun () ->
      let w = World.create ~network:World.Ethernet ~org () in
      let server = World.app w ~host:1 "rrp-server" in
      let client = World.app w ~host:0 "rrp-client" in
      let got =
        Sched.block_on (World.sched w) (fun () ->
            let _svc =
              server.Sockets.rrp_serve ~port:300 (fun req ->
                  View.of_string ("srv:" ^ View.to_string req))
            in
            let cl = client.Sockets.rrp_client () in
            let r =
              match cl.Sockets.rrp_call ~dst:(World.host_ip w 1) ~dst_port:300
                      (View.of_string "q")
              with
              | Ok v -> View.to_string v
              | Error e -> failwith e
            in
            cl.Sockets.rrp_client_close ();
            r)
      in
      check_s "transaction" "srv:q" got)

let test_userlib_rrp_bypasses_registry () =
  let w = World.create ~network:World.Ethernet ~org:Organization.User_library () in
  let server = World.app w ~host:1 "srv" in
  let client = World.app w ~host:0 "cli" in
  let answered = ref 0 in
  Sched.block_on (World.sched w) (fun () ->
      let _svc = server.Sockets.rrp_serve ~port:300 (fun req -> req) in
      let cl = client.Sockets.rrp_client () in
      for _ = 1 to 25 do
        match cl.Sockets.rrp_call ~dst:(World.host_ip w 1) ~dst_port:300 (View.of_string "x") with
        | Ok _ -> incr answered
        | Error _ -> ()
      done;
      cl.Sockets.rrp_client_close ());
  check "all transactions completed" 25 !answered;
  (* The registries saw binding traffic only: their stacks never carry a
     single RRP message. *)
  let reg1 = Option.get (World.registry w 1) in
  let reg_stack = Uln_core.Registry.stack reg1 in
  check "registry carried no transactions" 0
    (Uln_proto.Rrp.requests_served reg_stack.Uln_proto.Stack.rrp)

let test_rrp_latency_beats_tcp_per_call () =
  (* The paper's motivation: for a single exchange, the specialized
     request-response protocol has far lower latency than setting up a
     TCP connection. *)
  let measure_rrp () =
    let w = World.create ~network:World.Ethernet ~org:Organization.User_library () in
    let server = World.app w ~host:1 "s" in
    let client = World.app w ~host:0 "c" in
    Sched.block_on (World.sched w) (fun () ->
        let _svc = server.Sockets.rrp_serve ~port:300 (fun req -> req) in
        let cl = client.Sockets.rrp_client () in
        (* warm-up (ARP etc.) *)
        ignore (cl.Sockets.rrp_call ~dst:(World.host_ip w 1) ~dst_port:300 (View.of_string "w"));
        let t0 = Sched.now (World.sched w) in
        ignore (cl.Sockets.rrp_call ~dst:(World.host_ip w 1) ~dst_port:300 (View.of_string "x"));
        Time.diff (Sched.now (World.sched w)) t0)
  in
  let measure_tcp_per_call () =
    let w = World.create ~network:World.Ethernet ~org:Organization.User_library () in
    let server = World.app w ~host:1 "s" in
    let client = World.app w ~host:0 "c" in
    Sched.block_on (World.sched w) (fun () ->
        Sched.spawn (World.sched w) ~name:"srv" (fun () ->
            let l = server.Sockets.listen ~port:80 in
            let conn = l.Sockets.accept () in
            (match conn.Sockets.recv ~max:64 with
            | Some v -> conn.Sockets.send v
            | None -> ());
            conn.Sockets.close ());
        let t0 = Sched.now (World.sched w) in
        (match client.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
        | Error e -> failwith e
        | Ok conn ->
            conn.Sockets.send (View.of_string "x");
            ignore (conn.Sockets.recv ~max:64);
            conn.Sockets.close ());
        Time.diff (Sched.now (World.sched w)) t0)
  in
  let rrp = measure_rrp () in
  let tcp = measure_tcp_per_call () in
  check_bool "rrp single exchange much cheaper than tcp connect+exchange" true
    (Time.to_ms_f rrp *. 2. < Time.to_ms_f tcp)

let () =
  Alcotest.run ~and_exit:false "rrp"
    [ ( "engine",
        [ Alcotest.test_case "basic transaction" `Quick test_basic_transaction;
          Alcotest.test_case "dead port times out" `Quick test_call_to_dead_port_times_out;
          Alcotest.test_case "at-most-once under loss" `Quick test_at_most_once_under_loss;
          Alcotest.test_case "coexists with tcp" `Quick test_coexists_with_tcp ] );
      ("organizations", List.map rrp_org_case orgs);
      ( "userlib",
        [ Alcotest.test_case "bypasses registry" `Quick test_userlib_rrp_bypasses_registry;
          Alcotest.test_case "latency beats tcp-per-call" `Quick
            test_rrp_latency_beats_tcp_per_call ] ) ]

(* --- transaction properties (appended suite) ------------------------------ *)

let prop_rrp_exactly_once_any_payload =
  QCheck.Test.make ~name:"every rrp call executes exactly once (any payload)" ~count:40
    QCheck.(string_of_size Gen.(0 -- 1200))
    (fun payload ->
      let w = make_world () in
      let executed = ref 0 in
      let echoed =
        run_to_completion w (fun () ->
            let _srv =
              Rrp.serve w.a.stack.Stack.rrp ~port:300 (fun req ->
                  incr executed;
                  req)
            in
            match
              Rrp.call w.b.stack.Stack.rrp ~src_port:40001 ~dst:w.a.ip ~dst_port:300
                (View.of_string payload)
            with
            | Ok r -> View.to_string r
            | Error e -> failwith e)
      in
      !executed = 1 && String.equal echoed payload)

let () =
  Alcotest.run ~and_exit:false "rrp-props"
    [ ("props", [ QCheck_alcotest.to_alcotest prop_rrp_exactly_once_any_payload ]) ]
