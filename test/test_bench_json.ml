(* Every committed BENCH_*.json must parse: the bench harness validates
   before writing, and this guards the files actually in the tree (a
   hand edit, merge damage, or an emitter regression fails the build). *)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  assert (files <> []);
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Uln_workload.Jout.validate s with
      | Ok () -> Printf.printf "%s: ok\n" (Filename.basename path)
      | Error e ->
          Printf.eprintf "%s: malformed JSON: %s\n" path e;
          exit 1)
    files
