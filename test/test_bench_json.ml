(* Every committed BENCH_*.json must parse: the bench harness validates
   before writing, and this guards the files actually in the tree (a
   hand edit, merge damage, or an emitter regression fails the build).
   The scale and churn files additionally must carry the sparse-sweep
   percentile fields — a regenerated file that silently dropped the
   64k-1M rows would otherwise still parse. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Emitted field names the sparse rows must carry, keyed by file. *)
let required_fields = function
  | "BENCH_scale.json" ->
      [ "sparse-scale";
        "miss_p50_cycles"; "miss_p99_cycles"; "miss_p999_cycles";
        "linear_cycles";
        "setup_p50_us"; "setup_p99_us"; "setup_p999_us";
        "delivery_p50_us"; "delivery_p99_us"; "delivery_p999_us" ]
  | "BENCH_churn.json" ->
      [ "population"; "churn_p50_us"; "churn_p99_us"; "churn_p999_us" ]
  | "BENCH_wan.json" ->
      [ "config"; "delay_ms"; "loss"; "goodput_mbps";
        "segments_out"; "retransmissions"; "sack_rexmits"; "snd_scale"; "cong";
        "recovery_samples"; "recovery_p50_us"; "recovery_p99_us"; "recovery_p999_us";
        "wan-baseline"; "wan+wscale"; "wan+wscale+sack"; "wan+sack+newreno"; "wan+sack+cubic" ]
  | "BENCH_table3.json" -> [ "rtt_ms"; "p50_us"; "p99_us"; "p999_us" ]
  | "BENCH_rpc.json" ->
      [ "scenario"; "config"; "servers"; "requests";
        "offered_rps"; "delivered_rps"; "completed"; "expired";
        "ring_drops"; "ring_overflows"; "interrupts"; "polls";
        "p50_us"; "p99_us"; "p999_us"; "saturation_rps";
        "per-packet"; "coalesced" ]
  | "BENCH_overload.json" ->
      [ "scenario"; "config"; "servers"; "requests"; "multiplier";
        "offered_rps"; "delivered_rps"; "completed"; "expired";
        "ring_drops"; "ring_overflows"; "interrupts"; "polls";
        "p50_us"; "p99_us"; "p999_us"; "saturation_rps";
        "per-packet"; "coalesced" ]
  | _ -> []

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  assert (files <> []);
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Uln_workload.Jout.validate s with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "%s: malformed JSON: %s\n" path e;
          exit 1);
      let base = Filename.basename path in
      List.iter
        (fun field ->
          if not (contains s field) then begin
            Printf.eprintf "%s: missing required field %S\n" path field;
            exit 1
          end)
        (required_fields base);
      Printf.printf "%s: ok\n" base)
    files
