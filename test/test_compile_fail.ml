(* The compile-fail harness: the session-typed FSM's static claims are
   only as good as the programs it rejects.  Each compile_fail/bad_*.ml
   snippet encodes one forbidden flow (data send before ESTABLISHED,
   BQI exchange outside the handshake, transition out of a retired
   TIME_WAIT witness) and must be refused by the type checker;
   compile_fail/good.ml is the positive control proving the harness
   flags actually compile well-typed code.

   Runs the compiler out of process against the already-built library
   cmis, so the snippets never become part of the build proper. *)

let lib_dirs =
  [ "../lib/proto/.uln_proto.objs/byte";
    "../lib/engine/.uln_engine.objs/byte";
    "../lib/buf/.uln_buf.objs/byte";
    "../lib/addr/.uln_addr.objs/byte";
    "../lib/host/.uln_host.objs/byte";
    "../lib/netsim/.uln_net.objs/byte" ]

let quote = Filename.quote

let compile src =
  (* Type-check only (-c); artifacts land in a scratch directory so the
     build tree stays clean. *)
  let tmp = Filename.temp_file "uln_compile_fail" "" in
  Sys.remove tmp;
  assert (Sys.command (Printf.sprintf "mkdir -p %s" (quote tmp)) = 0);
  let here = Sys.getcwd () in
  let incls =
    String.concat " " (List.map (fun d -> "-I " ^ quote (Filename.concat here d)) lib_dirs)
  in
  let base = Filename.basename src in
  let cmd_cp = Printf.sprintf "cp %s %s" (quote src) (quote (Filename.concat tmp base)) in
  assert (Sys.command cmd_cp = 0);
  let log = Filename.concat tmp "out.log" in
  let cmd =
    Printf.sprintf "cd %s && ocamlfind ocamlopt -c %s %s > %s 2>&1" (quote tmp) incls
      (quote base) (quote log)
  in
  let rc = Sys.command cmd in
  let ic = open_in_bin log in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (quote tmp)));
  (rc, out)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let () =
  let dir = "compile_fail" in
  let snippets = Sys.readdir dir |> Array.to_list |> List.sort compare in
  let ok = ref true in
  let seen_good = ref 0 and seen_bad = ref 0 in
  List.iter
    (fun f ->
      if Filename.check_suffix f ".ml" then begin
        let rc, out = compile (Filename.concat dir f) in
        let expect_fail = String.length f >= 4 && String.sub f 0 4 = "bad_" in
        if expect_fail then incr seen_bad else incr seen_good;
        match (expect_fail, rc = 0) with
        | false, true -> Printf.printf "%-32s compiles (as it must)\n" f
        | true, false when contains out "Error" ->
            Printf.printf "%-32s rejected by the type checker (as it must be)\n" f
        | false, false ->
            ok := false;
            Printf.printf "%-32s FAILED to compile but should:\n%s\n" f out
        | true, true ->
            ok := false;
            Printf.printf "%-32s compiled but must be rejected\n" f
        | true, false ->
            ok := false;
            Printf.printf "%-32s failed without a type error (harness broken?):\n%s\n" f out
      end)
    snippets;
  if !seen_good = 0 || !seen_bad < 3 then begin
    ok := false;
    Printf.printf "harness: expected >= 1 good and >= 3 bad snippets, found %d/%d\n"
      !seen_good !seen_bad
  end;
  if not !ok then exit 1;
  Printf.printf "compile-fail: %d snippets behaved as specified\n" (!seen_good + !seen_bad)
