open Tutil
module Tcp_state = Uln_proto.Tcp_state
module Rng = Uln_engine.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* Spawn a server thread that accepts one connection and runs [f]. *)
let with_server w ~port f =
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port in
      let conn, _ = Tcp.accept l in
      f conn)

let connect_a w ~port =
  match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:port with
  | Ok (c, _) -> c
  | Error e -> failwith ("connect failed: " ^ e)

(* --- handshake ---------------------------------------------------------- *)

let test_handshake () =
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      check_bool "server established" true (Tcp.state conn = Tcp_state.Established));
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      check_bool "client established" true (Tcp.state c = Tcp_state.Established);
      check "client port" 5000 (Tcp.local_port c);
      let ip, port = Tcp.remote_addr c in
      check_bool "remote ip" true (Ip.equal ip w.b.ip);
      check "remote port" 80 port;
      Tcp.abort c)

let test_mss_negotiated () =
  let w = make_world () in
  with_server w ~port:80 (fun _ -> ());
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      (* Ethernet MTU 1500 - 40 bytes of headers. *)
      check "mss" 1460 (Tcp.mss c);
      Tcp.abort c)

let test_connect_refused () =
  let w = make_world () in
  let r =
    run_to_completion w (fun () ->
        Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:81)
  in
  check_bool "refused" true (match r with Error _ -> true | Ok _ -> false)

let test_connect_timeout_when_peer_dead () =
  let w = make_world () in
  (* Point at a nonexistent host: ARP fails, SYN can never be delivered. *)
  let r =
    run_to_completion w (fun () ->
        Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:(Ip.of_string "10.0.0.99")
          ~dst_port:80)
  in
  check_bool "timed out" true (match r with Error _ -> true | Ok _ -> false)

(* --- data transfer -------------------------------------------------------- *)

let test_small_transfer () =
  let w = make_world () in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      received := read_exactly conn 11;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string "hello world");
      Tcp.close c;
      Tcp.await_closed c);
  check_s "payload" "hello world" !received

let test_bulk_transfer_integrity () =
  let w = make_world () in
  let n = 200_000 in
  let data = pattern n in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string data);
      Tcp.close c;
      Tcp.await_closed c);
  check "length" n (String.length !received);
  check_bool "content" true (String.equal data !received)

let test_bidirectional_transfer () =
  let w = make_world () in
  let server_got = ref "" in
  with_server w ~port:80 (fun conn ->
      server_got := read_exactly conn 4;
      Tcp.write conn (View.of_string "pong");
      Tcp.close conn);
  let client_got =
    run_to_completion w (fun () ->
        let c = connect_a w ~port:80 in
        Tcp.write c (View.of_string "ping");
        let answer = read_exactly c 4 in
        Tcp.close c;
        Tcp.await_closed c;
        answer)
  in
  check_s "server" "ping" !server_got;
  check_s "client" "pong" client_got

let test_many_small_writes () =
  let w = make_world () in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      for i = 0 to 99 do
        Tcp.write c (View.of_string (Printf.sprintf "%04d" i))
      done;
      Tcp.close c;
      Tcp.await_closed c);
  check "total" 400 (String.length !received);
  check_s "first" "0000" (String.sub !received 0 4);
  check_s "last" "0099" (String.sub !received 396 4)

(* --- close semantics -------------------------------------------------------- *)

let test_eof_after_fin () =
  let w = make_world () in
  let got_eof = ref false in
  with_server w ~port:80 (fun conn ->
      (match Tcp.read conn ~max:100 with
      | Some _ -> ()
      | None -> got_eof := true);
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.close c;
      Tcp.await_closed c);
  check_bool "eof" true !got_eof

let test_half_close_allows_peer_writes () =
  (* Client closes its direction, then still reads the server's data. *)
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      (* Server sees EOF, then responds. *)
      (match Tcp.read conn ~max:10 with None -> () | Some _ -> Alcotest.fail "expected EOF");
      Tcp.write conn (View.of_string "late data");
      Tcp.close conn);
  let got =
    run_to_completion w (fun () ->
        let c = connect_a w ~port:80 in
        Tcp.close c;
        let s = read_all c in
        Tcp.await_closed c;
        s)
  in
  check_s "received after half close" "late data" got

let test_time_wait_entered_by_active_closer () =
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      (match Tcp.read conn ~max:10 with None -> () | Some _ -> ());
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.close c;
      (* Wait until our FIN is acked and the peer's FIN arrives. *)
      Sched.sleep w.sched (Time.ms 500);
      check_bool "in TIME_WAIT" true (Tcp.state c = Tcp_state.Time_wait);
      Tcp.await_closed c;
      check_bool "finally closed" true (Tcp.state c = Tcp_state.Closed))

let test_abort_sends_rst () =
  let w = make_world () in
  let server_err = ref None in
  with_server w ~port:80 (fun conn ->
      (try ignore (Tcp.read conn ~max:10) with Tcp.Connection_error e -> server_err := Some e);
      ());
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Sched.sleep w.sched (Time.ms 50);
      Tcp.abort c;
      Sched.sleep w.sched (Time.ms 200));
  check_bool "server saw reset" true (!server_err <> None)

(* --- loss recovery ------------------------------------------------------------ *)

let lossy_world drop =
  let rng = Rng.create ~seed:99 in
  make_world ~fault:(Fault.create ~rng ~drop ()) ()

let test_transfer_survives_loss () =
  let w = lossy_world 0.05 in
  let n = 60_000 in
  let data = pattern n in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string data);
      Tcp.close c;
      Tcp.await_closed c);
  check "length" n (String.length !received);
  check_bool "content" true (String.equal data !received);
  check_bool "retransmissions happened" true
    (Uln_proto.Tcp.retransmissions w.a.stack.Stack.tcp > 0)

let test_transfer_survives_heavy_loss () =
  let w = lossy_world 0.15 in
  let n = 20_000 in
  let data = pattern n in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string data);
      Tcp.close c;
      Tcp.await_closed c);
  check_bool "content" true (String.equal data !received)

let test_transfer_survives_corruption () =
  let rng = Rng.create ~seed:7 in
  let w = make_world ~fault:(Fault.create ~rng ~corrupt:0.05 ()) () in
  let n = 40_000 in
  let data = pattern n in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string data);
      Tcp.close c;
      Tcp.await_closed c);
  check_bool "content survives corruption" true (String.equal data !received)

let test_transfer_survives_reordering_and_dup () =
  let rng = Rng.create ~seed:13 in
  let w = make_world ~fault:(Fault.create ~rng ~reorder:0.1 ~duplicate:0.05 ()) () in
  let n = 40_000 in
  let data = pattern n in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string data);
      Tcp.close c;
      Tcp.await_closed c);
  check_bool "content survives reorder+dup" true (String.equal data !received)

let prop_transfer_random_loss_seeds =
  QCheck.Test.make ~name:"bulk transfer correct under random loss seeds" ~count:15
    QCheck.(pair (1 -- 10000) (1 -- 8))
    (fun (seed, loss_pct) ->
      let rng = Rng.create ~seed in
      let w =
        make_world ~fault:(Fault.create ~rng ~drop:(float_of_int loss_pct /. 100.) ()) ()
      in
      let n = 15_000 in
      let data = pattern n in
      let received = ref "" in
      with_server w ~port:80 (fun conn ->
          received := read_all conn;
          Tcp.close conn);
      run_to_completion w (fun () ->
          let c = connect_a w ~port:80 in
          Tcp.write c (View.of_string data);
          Tcp.close c;
          Tcp.await_closed c);
      String.equal data !received)

(* --- flow control ---------------------------------------------------------------- *)

let test_slow_reader_flow_control () =
  (* Receiver drains slowly: sender must not overrun the 16 KB receive
     buffer; zero-window persist must eventually resume the flow. *)
  let w = make_world () in
  let n = 100_000 in
  let data = pattern n in
  let received = Buffer.create n in
  with_server w ~port:80 (fun conn ->
      let rec go () =
        Sched.sleep w.sched (Time.ms 50);
        match Tcp.read conn ~max:2048 with
        | None -> ()
        | Some v ->
            Buffer.add_string received (View.to_string v);
            go ()
      in
      go ();
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string data);
      Tcp.close c;
      Tcp.await_closed c);
  check "all delivered" n (Buffer.length received);
  check_bool "in order" true (String.equal data (Buffer.contents received))

let test_congestion_window_grows () =
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      let rec drain () = match Tcp.read conn ~max:65536 with None -> () | Some _ -> drain () in
      drain ();
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      let initial = Tcp.cwnd c in
      Tcp.write c (View.of_string (pattern 50_000));
      check_bool "cwnd grew" true (Tcp.cwnd c > initial);
      Tcp.close c;
      Tcp.await_closed c)

let test_srtt_estimated () =
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      let rec drain () = match Tcp.read conn ~max:65536 with None -> () | Some _ -> drain () in
      drain ();
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string (pattern 30_000));
      Sched.sleep w.sched (Time.sec 1);
      check_bool "srtt positive" true (Tcp.srtt_us c > 0.);
      Tcp.close c;
      Tcp.await_closed c)

(* --- handoff (registry-style) ------------------------------------------------------ *)

let test_export_import_preserves_stream () =
  (* Connect with one engine, hand the established connection to a second
     engine on the same stack...  here we re-import into the same engine,
     which exercises the detach/adopt path the registry uses. *)
  let w = make_world () in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      let snap = Tcp.export c ~witness:(Option.get (Tcp.established_witness c)) in
      check_bool "old conn unusable" true
        (try
           Tcp.write c (View.of_string "x");
           false
         with Tcp.Connection_error _ -> true);
      let c2 = Tcp.import w.a.stack.Stack.tcp snap in
      Tcp.write c2 (View.of_string "via imported connection");
      Tcp.close c2;
      Tcp.await_closed c2);
  check_s "stream continues" "via imported connection" !received

let test_export_requires_established () =
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      (match Tcp.read conn ~max:10 with None -> () | Some _ -> ());
      Tcp.close conn);
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, witness) ->
          Tcp.close c;
          Tcp.await_closed c;
          check_bool "no fresh witness after close" true
            (Option.is_none (Tcp.established_witness c));
          (* The stale witness from connect time is refused by the
             dynamic backstop: the connection is no longer ESTABLISHED. *)
          check_bool "export after close fails" true
            (try
               ignore (Tcp.export c ~witness);
               false
             with Failure _ -> true))

(* --- multiple connections ------------------------------------------------------------ *)

let test_concurrent_connections () =
  let w = make_world () in
  let results = Hashtbl.create 8 in
  Sched.spawn w.sched ~name:"multi-server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      for _ = 1 to 4 do
        let conn, _ = Tcp.accept l in
        Sched.spawn w.sched ~name:"conn-server" (fun () ->
            let data = read_all conn in
            Hashtbl.replace results data true;
            Tcp.close conn)
      done);
  run_to_completion w (fun () ->
      let conns =
        List.map
          (fun i ->
            match
              Tcp.connect w.a.stack.Stack.tcp ~src_port:(6000 + i) ~dst:w.b.ip ~dst_port:80
            with
            | Ok (c, _) -> (i, c)
            | Error e -> failwith e)
          [ 1; 2; 3; 4 ]
      in
      List.iter
        (fun (i, c) ->
          Tcp.write c (View.of_string (Printf.sprintf "conn-%d" i));
          Tcp.close c)
        conns;
      List.iter (fun (_, c) -> Tcp.await_closed c) conns);
  check "all streams delivered" 4 (Hashtbl.length results);
  check_bool "conn-3 present" true (Hashtbl.mem results "conn-3")

let test_port_collision_rejected () =
  let w = make_world () in
  with_server w ~port:80 (fun conn -> Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      let second = Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 in
      check_bool "same 4-tuple rejected" true
        (match second with Error "address in use" -> true | _ -> false);
      Tcp.abort c)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run ~and_exit:false "tcp"
    [ ( "handshake",
        [ Alcotest.test_case "three-way" `Quick test_handshake;
          Alcotest.test_case "mss negotiation" `Quick test_mss_negotiated;
          Alcotest.test_case "refused" `Quick test_connect_refused;
          Alcotest.test_case "dead peer" `Quick test_connect_timeout_when_peer_dead ] );
      ( "transfer",
        [ Alcotest.test_case "small" `Quick test_small_transfer;
          Alcotest.test_case "bulk 200k" `Quick test_bulk_transfer_integrity;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional_transfer;
          Alcotest.test_case "many small writes" `Quick test_many_small_writes ] );
      ( "close",
        [ Alcotest.test_case "eof after fin" `Quick test_eof_after_fin;
          Alcotest.test_case "half close" `Quick test_half_close_allows_peer_writes;
          Alcotest.test_case "time_wait" `Quick test_time_wait_entered_by_active_closer;
          Alcotest.test_case "abort/rst" `Quick test_abort_sends_rst ] );
      ( "loss",
        [ Alcotest.test_case "5% drop" `Quick test_transfer_survives_loss;
          Alcotest.test_case "15% drop" `Quick test_transfer_survives_heavy_loss;
          Alcotest.test_case "corruption" `Quick test_transfer_survives_corruption;
          Alcotest.test_case "reorder+dup" `Quick test_transfer_survives_reordering_and_dup;
          qc prop_transfer_random_loss_seeds ] );
      ( "flow",
        [ Alcotest.test_case "slow reader" `Quick test_slow_reader_flow_control;
          Alcotest.test_case "cwnd grows" `Quick test_congestion_window_grows;
          Alcotest.test_case "srtt estimated" `Quick test_srtt_estimated ] );
      ( "handoff",
        [ Alcotest.test_case "export/import" `Quick test_export_import_preserves_stream;
          Alcotest.test_case "export requires established" `Quick test_export_requires_established ] );
      ( "multi",
        [ Alcotest.test_case "concurrent connections" `Quick test_concurrent_connections;
          Alcotest.test_case "port collision" `Quick test_port_collision_rejected ] ) ]

(* --- keepalive (appended suite) ------------------------------------------ *)

let keepalive_params =
  { Uln_proto.Tcp_params.fast with
    Uln_proto.Tcp_params.keepalive = Some (Time.sec 2);
    keepalive_interval = Time.ms 500;
    keepalive_probes = 3 }

let test_keepalive_drops_dead_peer () =
  let w = make_world ~tcp_params:keepalive_params () in
  let server_err = ref None in
  with_server w ~port:80 (fun conn ->
      (* Hold the connection open; the peer will silently vanish. *)
      try ignore (Tcp.read conn ~max:10)
      with Tcp.Connection_error e -> server_err := Some e);
  Sched.spawn w.sched ~name:"vanishing-client" (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, witness) ->
          (* Detach without telling anyone: the peer sees pure silence.
             Suppress RSTs for probes to the now-unknown connection. *)
          Tcp.set_rst_on_unknown w.a.stack.Stack.tcp false;
          ignore (Tcp.export c ~witness));
  Sched.run w.sched;
  match !server_err with
  | Some e -> check_bool "keepalive detected death" true (e = "keepalive timeout")
  | None -> Alcotest.fail "server never noticed the dead peer"

let test_keepalive_spares_live_peer () =
  let w = make_world ~tcp_params:keepalive_params () in
  let outcome = ref `Pending in
  with_server w ~port:80 (fun conn ->
      (match Tcp.read conn ~max:10 with
      | Some _ -> outcome := `Data
      | None -> outcome := `Eof
      | exception Tcp.Connection_error _ -> outcome := `Err);
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      (* Stay idle well past several keepalive rounds, then speak. *)
      Sched.sleep w.sched (Time.sec 8);
      check_bool "still established through idleness" true
        (Tcp.state c = Uln_proto.Tcp_state.Established);
      Tcp.write c (View.of_string "still here");
      Tcp.close c;
      Tcp.await_closed c);
  check_bool "data delivered after long idle" true (!outcome = `Data)

let () =
  Alcotest.run ~and_exit:false "tcp-keepalive"
    [ ( "keepalive",
        [ Alcotest.test_case "drops dead peer" `Quick test_keepalive_drops_dead_peer;
          Alcotest.test_case "spares live peer" `Quick test_keepalive_spares_live_peer ] ) ]
