(* Tests for the extension features: C-threads synchronization
   primitives, per-connection protocol tailoring, the snoop decoder, and
   connection-churn hygiene. *)

module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module Mutex = Uln_engine.Mutex
module Condition = Uln_engine.Condition
module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Ip = Uln_addr.Ip
module Mac = Uln_addr.Mac
module Frame = Uln_net.Frame
module Tcp_params = Uln_proto.Tcp_params
module World = Uln_core.World
module Organization = Uln_core.Organization
module Sockets = Uln_core.Sockets
module Protolib = Uln_core.Protolib
module Registry = Uln_core.Registry
module Snoop = Uln_workload.Snoop

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- mutex / condition ------------------------------------------------- *)

let test_mutex_excludes () =
  let s = Sched.create () in
  let m = Mutex.create () in
  let log = ref [] in
  let worker tag =
    Sched.spawn s (fun () ->
        Mutex.with_lock m (fun () ->
            log := (tag ^ ":in") :: !log;
            Sched.sleep s (Time.ms 5);
            log := (tag ^ ":out") :: !log))
  in
  worker "a";
  worker "b";
  Sched.run s;
  (* Critical sections must not interleave. *)
  Alcotest.(check (list string)) "serialized" [ "a:in"; "a:out"; "b:in"; "b:out" ]
    (List.rev !log)

let test_mutex_try_lock () =
  let s = Sched.create () in
  let m = Mutex.create () in
  Sched.block_on s (fun () ->
      check_bool "first" true (Mutex.try_lock m);
      check_bool "second" false (Mutex.try_lock m);
      Mutex.unlock m;
      check_bool "after unlock" true (Mutex.try_lock m);
      Mutex.unlock m)

let test_mutex_unlock_unheld_rejected () =
  let m = Mutex.create () in
  Alcotest.check_raises "unlock unheld" (Invalid_argument "Mutex.unlock: not locked")
    (fun () -> Mutex.unlock m)

let test_condition_signal () =
  let s = Sched.create () in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let ready = ref false in
  let observed = ref false in
  Sched.spawn s (fun () ->
      Mutex.lock m;
      while not !ready do
        Condition.wait cv m
      done;
      observed := true;
      Mutex.unlock m);
  Sched.spawn s (fun () ->
      Sched.sleep s (Time.ms 3);
      Mutex.lock m;
      ready := true;
      Condition.signal cv;
      Mutex.unlock m);
  Sched.run s;
  check_bool "woken with predicate" true !observed

let test_condition_broadcast () =
  let s = Sched.create () in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let woken = ref 0 in
  for _ = 1 to 5 do
    Sched.spawn s (fun () ->
        Mutex.lock m;
        Condition.wait cv m;
        incr woken;
        Mutex.unlock m)
  done;
  Sched.spawn s (fun () ->
      Sched.sleep s (Time.ms 2);
      Condition.broadcast cv);
  Sched.run s;
  check "all woken" 5 !woken

(* --- per-connection tailoring (paper SS5) -------------------------------- *)

let interactive =
  { Tcp_params.default with Tcp_params.nagle = false; ack_every = 1; delack = Time.ms 1 }

(* Write-write-read command loop; returns ms per command. *)
let command_loop w conn n =
  let sched = World.sched w in
  let head = View.create 1 and tail = View.create 2 in
  let t0 = Sched.now sched in
  for _ = 1 to n do
    conn.Sockets.send head;
    conn.Sockets.send tail;
    match conn.Sockets.recv ~max:1 with Some _ -> () | None -> failwith "EOF"
  done;
  Time.to_ms_f (Time.diff (Sched.now sched) t0) /. float_of_int n

let run_terminal ~tuned =
  let w = World.create ~network:World.Ethernet ~org:Organization.User_library () in
  let sched = World.sched w in
  let srv = World.app w ~host:1 "srv" in
  let lib = Option.get (World.library w ~host:0 "term") in
  Sched.spawn sched ~name:"srv" (fun () ->
      let l = srv.Sockets.listen ~port:23 in
      let conn = l.Sockets.accept () in
      let prompt = View.create 1 in
      let rec loop () =
        let got = ref 0 and eof = ref false in
        while !got < 3 && not !eof do
          match conn.Sockets.recv ~max:(3 - !got) with
          | Some v -> got := !got + View.length v
          | None -> eof := true
        done;
        if not !eof then begin
          conn.Sockets.send prompt;
          loop ()
        end
        else conn.Sockets.close ()
      in
      loop ());
  Sched.block_on sched (fun () ->
      let conn =
        if tuned then
          Result.get_ok
            (Protolib.connect_tuned lib ~params:interactive ~src_port:0
               ~dst:(World.host_ip w 1) ~dst_port:23)
        else
          Result.get_ok
            ((Protolib.app lib).Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1)
               ~dst_port:23)
      in
      let ms = command_loop w conn 10 in
      conn.Sockets.close ();
      ms)

let test_tuned_connection_beats_stock () =
  let stock = run_terminal ~tuned:false in
  let tuned = run_terminal ~tuned:true in
  (* Nagle + delayed-ACK stalls make the stock variant pay ~200 ms per
     write-write-read command; the tailored engine does not. *)
  check_bool "at least 5x faster" true (stock /. tuned > 5.0)

(* --- snoop decoder -------------------------------------------------------- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_snoop_decodes_tcp () =
  let seg =
    Uln_proto.Tcp_wire.encode ~src_ip:(Ip.of_string "10.0.0.1") ~dst_ip:(Ip.of_string "10.0.0.2")
      { Uln_proto.Tcp_wire.src_port = 5000;
        dst_port = 80;
        seq = 42;
        ack = 7;
        flags = { Uln_proto.Tcp_wire.no_flags with Uln_proto.Tcp_wire.syn = true };
        wnd = 1024;
        opts = Uln_proto.Tcp_wire.opts_mss 1460;
        payload = Mbuf.empty }
  in
  let hdr = View.create 20 in
  View.set_uint8 hdr 0 0x45;
  View.set_uint16 hdr 2 (20 + Mbuf.length seg);
  View.set_uint8 hdr 9 6;
  View.set_uint32 hdr 12 (Ip.to_int32 (Ip.of_string "10.0.0.1"));
  View.set_uint32 hdr 16 (Ip.to_int32 (Ip.of_string "10.0.0.2"));
  View.set_uint16 hdr 10 (Uln_proto.Checksum.of_view hdr);
  let line =
    Snoop.describe
      (Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2) ~ethertype:Frame.ethertype_ip
         (Mbuf.prepend hdr seg))
  in
  check_bool "mentions ports" true (contains line "10.0.0.1:5000" && contains line "10.0.0.2:80");
  check_bool "shows SYN" true (contains line "S");
  check_bool "shows seq" true (contains line "seq=42")

let test_snoop_never_raises_on_garbage () =
  let rng = Uln_engine.Rng.create ~seed:5 in
  for _ = 1 to 2_000 do
    let len = Uln_engine.Rng.int rng 100 in
    let payload = View.create len in
    for i = 0 to len - 1 do
      View.set_uint8 payload i (Uln_engine.Rng.int rng 256)
    done;
    let ethertype = if Uln_engine.Rng.bool rng then 0x0800 else Uln_engine.Rng.int rng 0x10000 in
    ignore
      (Snoop.describe
         (Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2) ~ethertype (Mbuf.of_view payload)))
  done

let test_snoop_captures_a_session () =
  let w = World.create ~network:World.Ethernet ~org:Organization.User_library () in
  let buf = Snoop.capture (World.link w) in
  let server = World.app w ~host:1 "s" and client = World.app w ~host:0 "c" in
  Sched.spawn (World.sched w) ~name:"s" (fun () ->
      let l = server.Sockets.listen ~port:80 in
      let conn = l.Sockets.accept () in
      (match conn.Sockets.recv ~max:64 with Some _ -> () | None -> ());
      conn.Sockets.close ());
  Sched.block_on (World.sched w) (fun () ->
      match client.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
      | Error e -> failwith e
      | Ok conn ->
          conn.Sockets.send (View.of_string "x");
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  let text = Buffer.contents buf in
  check_bool "saw arp" true (contains text "ARP who-has");
  check_bool "saw syn" true (contains text " S ");
  check_bool "saw fin" true (contains text "F");
  check_bool "timestamped" true (contains text "ms")

(* --- connection churn hygiene ---------------------------------------------- *)

let test_churn_leaves_no_residue () =
  let w = World.create ~network:World.Ethernet ~org:Organization.User_library () in
  let server = World.app w ~host:1 "srv" in
  let client = World.app w ~host:0 "cli" in
  let rounds = 8 in
  Sched.spawn (World.sched w) ~name:"srv" (fun () ->
      let l = server.Sockets.listen ~port:80 in
      for _ = 1 to rounds do
        let conn = l.Sockets.accept () in
        (match conn.Sockets.recv ~max:64 with Some _ -> () | None -> ());
        conn.Sockets.close ()
      done);
  Sched.block_on (World.sched w) (fun () ->
      for i = 1 to rounds do
        match client.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
        | Error e -> failwith e
        | Ok conn ->
            conn.Sockets.send (View.of_string (Printf.sprintf "round %d" i));
            conn.Sockets.close ();
            conn.Sockets.await_closed ()
      done);
  Sched.run (World.sched w);
  let reg0 = Option.get (World.registry w 0) in
  check "client ports all released" 0 (Registry.ports_in_use reg0);
  check "all handshakes succeeded" rounds (Registry.handshakes_completed reg0)

let () =
  Alcotest.run ~and_exit:false "extensions"
    [ ( "mutex",
        [ Alcotest.test_case "excludes" `Quick test_mutex_excludes;
          Alcotest.test_case "try_lock" `Quick test_mutex_try_lock;
          Alcotest.test_case "unlock unheld" `Quick test_mutex_unlock_unheld_rejected ] );
      ( "condition",
        [ Alcotest.test_case "signal" `Quick test_condition_signal;
          Alcotest.test_case "broadcast" `Quick test_condition_broadcast ] );
      ( "tailoring",
        [ Alcotest.test_case "tuned beats stock" `Quick test_tuned_connection_beats_stock ] );
      ( "snoop",
        [ Alcotest.test_case "decodes tcp" `Quick test_snoop_decodes_tcp;
          Alcotest.test_case "garbage safe" `Quick test_snoop_never_raises_on_garbage;
          Alcotest.test_case "captures session" `Quick test_snoop_captures_a_session ] );
      ("churn", [ Alcotest.test_case "no residue" `Quick test_churn_leaves_no_residue ]) ]

(* --- appended: handoff chains and AN1 snoop ------------------------------- *)

let test_pass_connection_chain () =
  (* inetd -> worker1 -> worker2: the capability moves twice, the stream
     survives both moves. *)
  let w = World.create ~network:World.Ethernet ~org:Organization.User_library () in
  let a = Option.get (World.library w ~host:1 "a") in
  let b = Option.get (World.library w ~host:1 "b") in
  let c = Option.get (World.library w ~host:1 "c") in
  let client = World.app w ~host:0 "client" in
  Sched.spawn (World.sched w) ~name:"chain" (fun () ->
      let l = (Protolib.app a).Sockets.listen ~port:23 in
      let conn = l.Sockets.accept () in
      let conn = Protolib.pass_connection a conn ~to_lib:b in
      let conn = Protolib.pass_connection b conn ~to_lib:c in
      (match conn.Sockets.recv ~max:64 with
      | Some v -> conn.Sockets.send (View.of_string ("c:" ^ View.to_string v))
      | None -> ());
      conn.Sockets.close ());
  let reply =
    Sched.block_on (World.sched w) (fun () ->
        match client.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:23 with
        | Error e -> failwith e
        | Ok conn ->
            Sched.sleep (World.sched w) (Time.ms 100);
            conn.Sockets.send (View.of_string "hi");
            let r =
              match conn.Sockets.recv ~max:64 with Some v -> View.to_string v | None -> ""
            in
            conn.Sockets.close ();
            conn.Sockets.await_closed ();
            r)
  in
  Alcotest.(check string) "served by the final owner" "c:hi" reply

let test_snoop_shows_bqi_on_an1 () =
  let w = World.create ~network:World.An1 ~org:Organization.User_library () in
  let buf = Snoop.capture (World.link w) in
  let server = World.app w ~host:1 "s" and client = World.app w ~host:0 "c" in
  Sched.spawn (World.sched w) ~name:"s" (fun () ->
      let l = server.Sockets.listen ~port:80 in
      let conn = l.Sockets.accept () in
      (match conn.Sockets.recv ~max:64 with Some _ -> () | None -> ());
      conn.Sockets.close ());
  Sched.block_on (World.sched w) (fun () ->
      match client.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
      | Error e -> failwith e
      | Ok conn ->
          conn.Sockets.send (View.of_string "x");
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  let text = Buffer.contents buf in
  (* Handshake advertises rings in the spare field; data rides them. *)
  check_bool "bqi hint on handshake" true (contains text "hint=");
  check_bool "data stamped with a ring" true (contains text "[bqi=1")

let () =
  Alcotest.run ~and_exit:false "extensions-2"
    [ ( "more",
        [ Alcotest.test_case "handoff chain" `Quick test_pass_connection_chain;
          Alcotest.test_case "an1 snoop shows bqi" `Quick test_snoop_shows_bqi_on_an1 ] ) ]
