(* Million-connection control plane: per-tenant quota admission (typed
   and recoverable), the sharded registry against the flat-table oracle
   under random connect/close/churn interleavings, the hierarchical
   demux miss path against the linear-scan oracle, and the quickselect
   percentile helper against a sort-based reference. *)

module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module View = Uln_buf.View
module Program = Uln_filter.Program
module Insn = Uln_filter.Insn
module Demux = Uln_filter.Demux
module Ip = Uln_addr.Ip
module Tcp_params = Uln_proto.Tcp_params
module World = Uln_core.World
module Sockets = Uln_core.Sockets
module Registry = Uln_core.Registry
module Protolib = Uln_core.Protolib
module Organization = Uln_core.Organization
module Percentile = Uln_workload.Percentile

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- per-tenant quotas -------------------------------------------------- *)

(* A server that closes each accepted connection immediately, so only
   the client's principal accumulates active grants. *)
let spawn_closing_server w ~port ~conns =
  let app = World.app w ~host:1 "srv" in
  Sched.spawn (World.sched w) ~name:"srv" (fun () ->
      let l = app.Sockets.listen ~port in
      for _ = 1 to conns do
        let c = l.Sockets.accept () in
        c.Sockets.close ()
      done)

let test_quota_typed_and_recoverable () =
  let quota = { Registry.q_max_conns = 4; q_max_mem_bytes = max_int } in
  let w =
    World.create ~network:World.Ethernet ~org:Organization.User_library
      ~tcp_params:Tcp_params.fast ~quota ~num_hosts:2 ()
  in
  let sched = World.sched w in
  spawn_closing_server w ~port:4100 ~conns:5;
  let lib = Option.get (World.library w ~host:0 "quota-cli") in
  Sched.block_on sched (fun () ->
      let connect () =
        Protolib.connect_q lib ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:4100
      in
      let held =
        List.init 4 (fun i ->
            match connect () with
            | Ok c -> c
            | Error e ->
                Alcotest.failf "connect %d refused: %s" i (Registry.error_to_string e))
      in
      (* The fifth connection trips the ceiling: the denial is typed,
         names the principal, and reports the consumption. *)
      (match connect () with
      | Ok _ -> Alcotest.fail "fifth connect exceeded the quota but was granted"
      | Error (Registry.Quota_exceeded { principal; resource; used; limit }) ->
          check_bool "resource is connections" true (resource = Registry.Conns);
          check "used at ceiling" 4 used;
          check "limit" 4 limit;
          Alcotest.(check string) "principal" "host0.quota-cli" principal
      | Error (Registry.Refused m) -> Alcotest.failf "untyped refusal: %s" m);
      let reg0 = Option.get (World.registry w 0) in
      let ts =
        List.find
          (fun (s : Registry.tenant_stats) -> s.Registry.ts_principal = "host0.quota-cli")
          (Registry.tenant_stats reg0)
      in
      check "one denial counted" 1 ts.Registry.ts_denied;
      check "peak at ceiling" 4 ts.Registry.ts_peak;
      (* Recoverable: shedding one connection frees the slot. *)
      let victim = List.hd held in
      victim.Sockets.close ();
      victim.Sockets.await_closed ();
      (* Past 2MSL both ends have released their grants. *)
      Sched.sleep sched (Time.span_scale Tcp_params.fast.Tcp_params.msl 3);
      match connect () with
      | Ok c -> c.Sockets.close ()
      | Error e ->
          Alcotest.failf "connect after shedding still refused: %s"
            (Registry.error_to_string e))

(* --- sharded registry vs the flat-table oracle -------------------------- *)

(* One deterministic churn trace on a 4-CPU world: [script] is a list of
   slot indices; a connect fills the lowest free slot, hitting an
   occupied slot closes it.  Returns the per-op outcomes plus the
   registry's final account — everything a caller can observe. *)
let churn_trace ~sharded script =
  let prm = { Tcp_params.fast with Tcp_params.shard_registry = sharded } in
  let w =
    World.create ~network:World.Ethernet ~org:Organization.User_library ~tcp_params:prm
      ~num_hosts:2 ~cpus:4 ()
  in
  let sched = World.sched w in
  let n_ops = List.length script in
  spawn_closing_server w ~port:4200 ~conns:n_ops;
  let app = World.app w ~host:0 "churn-cli" in
  let slots = Array.make 4 None in
  let outcomes = ref [] in
  Sched.block_on sched (fun () ->
      List.iter
        (fun slot ->
          match slots.(slot) with
          | Some (c : Sockets.conn) ->
              c.Sockets.close ();
              c.Sockets.await_closed ();
              slots.(slot) <- None;
              outcomes := "close" :: !outcomes
          | None -> (
              match
                app.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:4200
              with
              | Ok c ->
                  slots.(slot) <- Some c;
                  outcomes := "ok" :: !outcomes
              | Error e -> outcomes := ("err:" ^ e) :: !outcomes))
        script;
      Array.iter
        (function
          | Some (c : Sockets.conn) ->
              c.Sockets.close ();
              c.Sockets.await_closed ()
          | None -> ())
        slots;
      (* Let TIME_WAIT residues and deferred port frees drain. *)
      Sched.sleep sched (Time.span_scale prm.Tcp_params.msl 3));
  let reg = Option.get (World.registry w 0) in
  ( List.rev !outcomes,
    Registry.handshakes_completed reg,
    Registry.ports_in_use reg,
    Registry.num_shards reg )

let prop_shard_flat_differential =
  QCheck.Test.make ~name:"sharded registry = flat-table oracle (random churn)" ~count:12
    QCheck.(list_of_size Gen.(1 -- 10) (0 -- 3))
    (fun script ->
      let o_s, hs_s, pu_s, shards = churn_trace ~sharded:true script in
      let o_f, hs_f, pu_f, one = churn_trace ~sharded:false script in
      shards > 1 && one = 1 && o_s = o_f && hs_s = hs_f && pu_s = pu_f)

let test_shard_stats_populated () =
  let script = [ 0; 1; 2; 0; 3; 1 ] in
  let prm = { Tcp_params.fast with Tcp_params.shard_registry = true } in
  let w =
    World.create ~network:World.Ethernet ~org:Organization.User_library ~tcp_params:prm
      ~num_hosts:2 ~cpus:4 ()
  in
  let sched = World.sched w in
  spawn_closing_server w ~port:4300 ~conns:(List.length script);
  let app = World.app w ~host:0 "stats-cli" in
  Sched.block_on sched (fun () ->
      List.iter
        (fun _ ->
          match
            app.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:4300
          with
          | Ok c -> c.Sockets.close ()
          | Error e -> Alcotest.failf "connect: %s" e)
        script);
  let reg = Option.get (World.registry w 0) in
  let ss = Registry.shard_stats reg in
  check "one stats row per shard" (Registry.num_shards reg) (List.length ss);
  let acquisitions =
    List.fold_left (fun a (s : Registry.shard_stats) -> a + s.Registry.ss_lock_acquisitions) 0 ss
  in
  check_bool "shard locks were exercised" true (acquisitions > 0)

(* --- hierarchical demux vs the linear-scan oracle ----------------------- *)

(* Random tables mix three entry kinds: real installed tcp_conn filters
   (conjunctive-exact via the abstract interpreter), stamped filters
   (exact by construction), and an inexact range filter that lands in
   the residual list.  Random packets are drawn from the same byte
   space, so matches, near-misses and shadowing all occur. *)
let range_filter =
  (* TCP to any port >= 4000: not a pure equality conjunction. *)
  Program.of_insns
    [ Insn.Push_word 12; Insn.Push_lit 0x0800; Insn.Eq; Insn.Cand;
      Insn.Push_byte 23; Insn.Push_lit 6; Insn.Eq; Insn.Cand;
      Insn.Push_word 36; Insn.Push_lit 4000; Insn.Ge ]

let mk_packet ~src_last ~src_port ~dst_port ~len =
  let v = View.create len in
  if len > 13 then View.set_uint16 v 12 0x0800;
  if len > 23 then View.set_uint8 v 23 6;
  if len > 33 then begin
    View.set_uint8 v 14 0x45;
    View.set_uint32 v 26 (Ip.to_int32 (Ip.make 10 9 0 src_last));
    View.set_uint32 v 30 (Ip.to_int32 (Ip.make 10 9 0 250))
  end;
  if len > 37 then begin
    View.set_uint16 v 34 src_port;
    View.set_uint16 v 36 dst_port
  end;
  v

let prop_hier_demux_differential =
  let gen =
    QCheck.Gen.(
      triple (0 -- 1_000_000) (1 -- 40) (list_size (1 -- 30) (pair (0 -- 7) (0 -- 7))))
  in
  QCheck.Test.make ~name:"hier demux = linear scan (random tables and packets)"
    ~count:1000
    (QCheck.make gen)
    (fun (seed, n_entries, probes) ->
      let rng = Uln_engine.Rng.create ~seed in
      let rand k = Uln_engine.Rng.int rng k in
      let d = Demux.create ~mode:Demux.Interpreted () in
      let dst_ip = Ip.make 10 9 0 250 in
      let template = ref None in
      let keys = ref [] in
      for i = 0 to n_entries - 1 do
        match rand 4 with
        | 0 ->
            keys := Demux.install_exn d range_filter (1000 + i) :: !keys
        | 1 | 2 ->
            let k =
              Demux.install_exn d
                (Program.tcp_conn ~src_ip:(Ip.make 10 9 0 (rand 8)) ~dst_ip
                   ~src_port:(5000 + rand 8) ~dst_port:(4000 + rand 8))
                i
            in
            keys := k :: !keys;
            if !template = None then template := Some k
        | _ -> (
            match !template with
            | None -> keys := Demux.install_exn d range_filter (1000 + i) :: !keys
            | Some t -> (
                match
                  Demux.install_stamped d ~template:t
                    ~constraints:
                      [ (29, rand 8); (34, 0x13); (35, 0x88 + rand 8); (37, rand 256) ]
                    ~min_len:54 i
                with
                | Ok k -> keys := k :: !keys
                | Error e -> failwith e))
      done;
      (* A removal mid-stream exercises tombstones in both paths (never
         the template: stamped entries outlive it only as tombstones). *)
      (match !keys with
      | _ :: victim :: _ when Some victim <> !template -> Demux.remove d victim
      | _ -> ());
      List.for_all
        (fun (a, b) ->
          let pkt =
            mk_packet ~src_last:a ~src_port:(5000 + b) ~dst_port:(4000 + a)
              ~len:(if b land 1 = 0 then 54 else 38 + (4 * a))
          in
          Demux.set_hier d false;
          let lin, _ = Demux.dispatch d pkt in
          Demux.set_hier d true;
          let hier, _ = Demux.dispatch d pkt in
          lin = hier)
        probes)

(* --- percentile helper vs a sort-based reference ------------------------ *)

let reference_percentile q a =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  let idx = Stdlib.max 0 (int_of_float (ceil (q *. float_of_int n)) - 1) in
  s.(Stdlib.min (n - 1) idx)

let prop_percentile_matches_sort =
  let gen =
    QCheck.Gen.(
      pair
        (array_size (1 -- 200) (float_bound_inclusive 1e6))
        (float_range 0.001 1.0))
  in
  QCheck.Test.make ~name:"quickselect percentile = sort-based reference" ~count:500
    (QCheck.make gen)
    (fun (a, q) ->
      Percentile.percentile q a = reference_percentile q a)

let test_percentile_summary () =
  let a = Array.init 1000 (fun i -> float_of_int (999 - i)) in
  let s = Percentile.summarize a in
  Alcotest.(check (float 1e-9)) "p50" 499. s.Percentile.p50;
  Alcotest.(check (float 1e-9)) "p99" 989. s.Percentile.p99;
  Alcotest.(check (float 1e-9)) "p999" 998. s.Percentile.p999;
  match Percentile.summary_fields s with
  | [ (n50, _); (n99, _); (n999, _) ] ->
      Alcotest.(check string) "field names" "p50_us p99_us p999_us"
        (String.concat " " [ n50; n99; n999 ])
  | _ -> Alcotest.fail "summary_fields arity"

(* A tiny sparse-scale run end to end (the bench row in miniature). *)
let test_scale_sparse_smoke () =
  match Uln_workload.Experiments.scale_sparse ~pops:[ 512 ] () with
  | [ r ] ->
      let module E = Uln_workload.Experiments in
      check "population" 512 r.E.sp_conns;
      check_bool "hier miss beats linear scan" true
        (r.E.sp_miss_p.Percentile.p999 < r.E.sp_linear_cycles);
      check_bool "setup percentiles ordered" true
        (r.E.sp_setup_p.Percentile.p50 <= r.E.sp_setup_p.Percentile.p999);
      check_bool "delivery measured" true (r.E.sp_delivery_p.Percentile.p50 > 0.);
      check_bool "sharded" true (r.E.sp_shards > 1)
  | _ -> Alcotest.fail "expected one row"

let () =
  Alcotest.run "scale-ctl"
    [ ( "quota",
        [ Alcotest.test_case "typed and recoverable" `Quick
            test_quota_typed_and_recoverable ] );
      ( "shards",
        [ QCheck_alcotest.to_alcotest prop_shard_flat_differential;
          Alcotest.test_case "shard stats populated" `Quick test_shard_stats_populated ] );
      ( "hier-demux",
        [ QCheck_alcotest.to_alcotest prop_hier_demux_differential ] );
      ( "percentile",
        [ QCheck_alcotest.to_alcotest prop_percentile_matches_sort;
          Alcotest.test_case "summary and fields" `Quick test_percentile_summary ] );
      ( "sparse",
        [ Alcotest.test_case "scale_sparse smoke" `Quick test_scale_sparse_smoke ] ) ]
