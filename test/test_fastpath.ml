(* Differential tests for the data-path fast paths: each optimisation
   (flow-cache demux, TCP header prediction, fused copy+checksum) is
   checked against its slow path — the linear scan, the full input state
   machine, the byte-at-a-time checksum — over randomized inputs.  The
   fast paths must be behaviourally invisible. *)

open Tutil
module Rng = Uln_engine.Rng
module Bytequeue = Uln_buf.Bytequeue
module F = Uln_filter
module Checksum = Uln_proto.Checksum
module Tcp_wire = Uln_proto.Tcp_wire
module Fault = Uln_net.Fault
module E = Uln_workload.Experiments

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let random_view rng len =
  let v = View.create len in
  for i = 0 to len - 1 do
    View.set_uint8 v i (Rng.int rng 256)
  done;
  v

(* --- fused / word-at-a-time checksum vs byte-at-a-time reference ------- *)

let prop_of_view_matches_reference =
  QCheck.Test.make ~name:"word-at-a-time of_view = byte reference (incl. odd lengths)"
    ~count:200
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let v = random_view rng (Rng.int rng 601) in
      let init = Rng.int rng 0x10000 in
      Checksum.of_view ~init v = Checksum.reference_of_view ~init v)

let prop_of_mbuf_matches_reference =
  QCheck.Test.make ~name:"of_mbuf = byte reference across odd-length segments" ~count:200
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let nsegs = 1 + Rng.int rng 5 in
      let m = ref Mbuf.empty in
      for _ = 1 to nsegs do
        m := Mbuf.append !m (random_view rng (Rng.int rng 71))
      done;
      Checksum.of_mbuf !m = Checksum.reference_of_mbuf !m)

let prop_blit_sum =
  QCheck.Test.make ~name:"blit_sum copies exactly and sums like the reference" ~count:200
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let len = Rng.int rng 301 in
      let src = random_view rng len in
      let dst = View.create len in
      let sum = View.blit_sum src 0 dst 0 len in
      String.equal (View.to_string src) (View.to_string dst)
      && Checksum.finish sum = Checksum.reference_of_view src)

let prop_peek_sum =
  QCheck.Test.make ~name:"Bytequeue.peek_sum = peek + separate sum" ~count:200
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let q = Bytequeue.create () in
      for _ = 1 to 1 + Rng.int rng 4 do
        Bytequeue.push q (random_view rng (Rng.int rng 200))
      done;
      (* Move the head so the fused read starts mid-buffer sometimes. *)
      Bytequeue.drop q (Rng.int rng (1 + Bytequeue.length q));
      let avail = Bytequeue.length q in
      let off = Rng.int rng (avail + 1) in
      let len = Rng.int rng (avail - off + 1) in
      let fused, sum = Bytequeue.peek_sum q ~off ~len in
      let plain = Bytequeue.peek q ~off ~len in
      String.equal (View.to_string fused) (View.to_string plain)
      && Checksum.finish sum = Checksum.reference_of_view plain)

let prop_encode_with_payload_sum =
  QCheck.Test.make ~name:"Tcp_wire.encode ?payload_sum = plain encode" ~count:100
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let payload = random_view rng (Rng.int rng 400) in
      let seg =
        { Tcp_wire.src_port = Rng.int rng 0x10000;
          dst_port = Rng.int rng 0x10000;
          seq = Rng.int rng 0x10000000;
          ack = Rng.int rng 0x10000000;
          flags = { Tcp_wire.no_flags with Tcp_wire.ack = true; psh = Rng.bool rng };
          wnd = Rng.int rng 0x10000;
          opts =
                  (if Rng.bool rng then Tcp_wire.opts_mss (Rng.int rng 0x10000)
                   else Tcp_wire.no_opts);
          payload = Mbuf.of_view payload }
      in
      let src_ip = Ip.make 10 0 0 1 and dst_ip = Ip.make 10 0 0 2 in
      let psum = View.sum16 payload 0 (View.length payload) in
      let fused = Tcp_wire.encode ~payload_sum:psum ~src_ip ~dst_ip seg in
      let plain = Tcp_wire.encode ~src_ip ~dst_ip seg in
      String.equal (Mbuf.to_string fused) (Mbuf.to_string plain)
      && Tcp_wire.decode ~src_ip ~dst_ip fused <> None)

(* --- flow-cache demux vs linear scan ----------------------------------- *)

let tcp_pkt ?(len = 54) ~src_ip ~dst_ip ~src_port ~dst_port () =
  let v = View.create len in
  if len > 13 then View.set_uint16 v 12 0x0800;
  if len > 23 then View.set_uint8 v 23 6;
  if len > 29 then View.set_uint32 v 26 (Ip.to_int32 src_ip);
  if len > 33 then View.set_uint32 v 30 (Ip.to_int32 dst_ip);
  if len > 35 then View.set_uint16 v 34 src_port;
  if len > 37 then View.set_uint16 v 36 dst_port;
  v

let prop_cache_matches_scan =
  (* Two tables built by the same random install/remove sequence, one
     with the flow cache: every dispatch must name the same endpoint. *)
  QCheck.Test.make ~name:"flow-cache dispatch = linear scan over random tables" ~count:50
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let scan_t = F.Demux.create ~mode:F.Demux.Interpreted () in
      let cache_t = F.Demux.create ~mode:F.Demux.Interpreted ~flow_cache:true () in
      let ip i = Ip.make 10 0 0 (1 + (i land 0xf)) in
      let random_prog () =
        match Rng.int rng 6 with
        | 0 ->
            F.Program.tcp_conn ~src_ip:(ip (Rng.int rng 16)) ~dst_ip:(ip 0)
              ~src_port:(1000 + Rng.int rng 8) ~dst_port:80
        | 1 -> F.Program.tcp_dst_port ~dst_ip:(ip 0) ~dst_port:(79 + Rng.int rng 4)
        | 2 -> F.Program.udp_port ~dst_ip:(ip 0) ~dst_port:(53 + Rng.int rng 4)
        | 3 -> F.Program.arp ()
        | 4 -> F.Program.ip_proto (5 + Rng.int rng 3)
        | _ -> F.Program.rrp_server ~dst_ip:(ip 0) ~port:(300 + Rng.int rng 4)
      in
      let random_pkt () =
        match Rng.int rng 5 with
        | 0 ->
            tcp_pkt ~src_ip:(ip (Rng.int rng 16)) ~dst_ip:(ip 0)
              ~src_port:(1000 + Rng.int rng 8) ~dst_port:80 ()
        | 1 ->
            (* Random (possibly truncated) TCP-shaped packet. *)
            tcp_pkt ~len:(Rng.int rng 60) ~src_ip:(ip (Rng.int rng 16))
              ~dst_ip:(ip (Rng.int rng 4))
              ~src_port:(1000 + Rng.int rng 8)
              ~dst_port:(79 + Rng.int rng 4) ()
        | 2 ->
            let v = View.create 42 in
            View.set_uint16 v 12 0x0806;
            v
        | 3 -> random_view rng (Rng.int rng 60)
        | _ ->
            let v = tcp_pkt ~src_ip:(ip 1) ~dst_ip:(ip 0) ~src_port:300 ~dst_port:300 () in
            View.set_uint8 v 23 81;
            View.set_uint8 v 42 0;
            v
      in
      let next_ep = ref 0 in
      let keys = ref [] in
      let ok = ref true in
      for _ = 1 to 250 do
        let r = Rng.int rng 100 in
        if r < 12 then begin
          let p = random_prog () in
          match (F.Demux.install scan_t p !next_ep, F.Demux.install cache_t p !next_ep) with
          | Ok k1, Ok k2 ->
              incr next_ep;
              keys := (k1, k2) :: !keys
          | Error _, Error _ -> ()
          | _ -> ok := false
        end
        else if r < 18 && !keys <> [] then begin
          let n = Rng.int rng (List.length !keys) in
          let k1, k2 = List.nth !keys n in
          F.Demux.remove scan_t k1;
          F.Demux.remove cache_t k2;
          keys := List.filteri (fun i _ -> i <> n) !keys
        end
        else begin
          let pkt = random_pkt () in
          let e1, _ = F.Demux.dispatch scan_t pkt in
          let e2, _ = F.Demux.dispatch cache_t pkt in
          if e1 <> e2 then ok := false
        end
      done;
      let st = F.Demux.cache_stats cache_t in
      !ok && st.F.Demux.hits + st.F.Demux.misses > 0)

let test_hit_cost_flat () =
  (* The acceptance criterion: per-packet cache-hit cycles identical at
     4 and at 256 installed connections, while the scan cost grows. *)
  match E.scale ~conns:[ 4; 256 ] () with
  | [ r4; r256 ] ->
      check_bool "hits at 4 conns" true (r4.E.sc_hits > 0);
      check_bool "hits at 256 conns" true (r256.E.sc_hits > 0);
      Alcotest.(check (float 0.0))
        "equal per-packet hit cycles at 4 vs 256 conns" r4.E.sc_hit_cycles r256.E.sc_hit_cycles;
      check_bool "scan cost grows with table size" true
        (r256.E.sc_scan_cycles > 4.0 *. r4.E.sc_scan_cycles);
      check_bool "warm hits beat the scan" true (r256.E.sc_hit_cycles < r4.E.sc_scan_cycles)
  | _ -> Alcotest.fail "scale returned unexpected rows"

let test_cache_invalidation () =
  let d = F.Demux.create ~mode:F.Demux.Interpreted ~flow_cache:true () in
  let src_ip = Ip.make 10 0 0 2 and dst_ip = Ip.make 10 0 0 1 in
  let conn = F.Program.tcp_conn ~src_ip ~dst_ip ~src_port:1234 ~dst_port:80 in
  let _k = F.Demux.install_exn d conn `Conn in
  let pkt = tcp_pkt ~src_ip ~dst_ip ~src_port:1234 ~dst_port:80 () in
  let hit_of () = (F.Demux.cache_stats d).F.Demux.hits in
  check "first dispatch misses" 0 (hit_of ());
  ignore (F.Demux.dispatch d pkt);
  check "miss installs, no hit yet" 0 (hit_of ());
  ignore (F.Demux.dispatch d pkt);
  check "second dispatch hits" 1 (hit_of ());
  (* An install flushes: the next dispatch misses again. *)
  let k2 = F.Demux.install_exn d (F.Program.arp ()) `Arp in
  ignore (F.Demux.dispatch d pkt);
  check "flush after install" 1 (hit_of ());
  check_bool "flush counted" true ((F.Demux.cache_stats d).F.Demux.flushes >= 1);
  ignore (F.Demux.dispatch d pkt);
  check "re-warmed" 2 (hit_of ());
  (* A remove flushes too. *)
  F.Demux.remove d k2;
  ignore (F.Demux.dispatch d pkt);
  check "flush after remove" 2 (hit_of ());
  (* Turning the cache off restores pure scan dispatch. *)
  F.Demux.set_flow_cache d false;
  ignore (F.Demux.dispatch d pkt);
  check "no hits with cache off" 2 (hit_of ())

let test_shadowed_filter_not_cached () =
  (* A broad listener filter installed before a connection filter: the
     connection filter shadows it (most-recent-first), so the broad
     filter's accepts must never enter the cache — a cached dport-only
     key would steal the connection's packets. *)
  let d = F.Demux.create ~mode:F.Demux.Interpreted ~flow_cache:true () in
  let oracle = F.Demux.create ~mode:F.Demux.Interpreted () in
  let src_ip = Ip.make 10 0 0 2 and dst_ip = Ip.make 10 0 0 1 in
  let listen = F.Program.tcp_dst_port ~dst_ip ~dst_port:80 in
  let conn = F.Program.tcp_conn ~src_ip ~dst_ip ~src_port:1234 ~dst_port:80 in
  ignore (F.Demux.install_exn d listen `Listen);
  ignore (F.Demux.install_exn d conn `Conn);
  ignore (F.Demux.install_exn oracle listen `Listen);
  ignore (F.Demux.install_exn oracle conn `Conn);
  let conn_pkt = tcp_pkt ~src_ip ~dst_ip ~src_port:1234 ~dst_port:80 () in
  let other_pkt = tcp_pkt ~src_ip ~dst_ip ~src_port:999 ~dst_port:80 () in
  for _ = 1 to 4 do
    List.iter
      (fun pkt ->
        let e1, _ = F.Demux.dispatch d pkt in
        let e2, _ = F.Demux.dispatch oracle pkt in
        check_bool "cache agrees with scan under shadowing" true (e1 = e2))
      [ conn_pkt; other_pkt ]
  done;
  let st = F.Demux.cache_stats d in
  check_bool "connection flow was cached" true (st.F.Demux.hits > 0);
  check_bool "shadow-unsafe accepts were skipped" true (st.F.Demux.skips > 0)

(* --- TCP header prediction vs the full state machine ------------------- *)

let transfer ?fault ~params n =
  (* One bulk transfer a->b; returns what b read plus both engines'
     counters.  Deterministic given the fault seed. *)
  let w = make_world ~tcp_params:params ?fault () in
  let data = pattern n in
  let received = ref "" in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          Tcp.write c (View.of_string data);
          Tcp.close c;
          Tcp.await_closed c);
  let tcp_a = w.a.stack.Stack.tcp and tcp_b = w.b.stack.Stack.tcp in
  ( !received,
    data,
    Tcp.segments_out tcp_a + Tcp.segments_out tcp_b,
    Tcp.retransmissions tcp_a + Tcp.retransmissions tcp_b,
    Tcp.predicted_acks tcp_a + Tcp.predicted_acks tcp_b,
    Tcp.predicted_data tcp_a + Tcp.predicted_data tcp_b,
    Tcp.checksum_failures tcp_a + Tcp.checksum_failures tcp_b )

let predicted_params on = { Tcp_params.fast with Tcp_params.header_prediction = on }

let test_prediction_transparent_clean_link () =
  let got_f, want_f, segs_f, rexmit_f, packs, pdata, _ =
    transfer ~params:(predicted_params true) 50_000
  in
  let got_s, want_s, segs_s, rexmit_s, sacks, sdata, _ =
    transfer ~params:(predicted_params false) 50_000
  in
  check_str "fast path delivers the data" want_f got_f;
  check_str "slow path delivers the data" want_s got_s;
  check "identical segment counts" segs_s segs_f;
  check "identical retransmissions" rexmit_s rexmit_f;
  check_bool "fast path actually taken (acks)" true (packs > 0);
  check_bool "fast path actually taken (data)" true (pdata > 0);
  check "slow-only run predicts nothing" 0 (sacks + sdata)

let prop_prediction_equivalent_under_faults =
  (* Random loss/reordering/duplication drives segments down the slow
     path (out-of-order arrivals, window updates); whatever mix results,
     the two configurations must produce byte-identical deliveries and
     identical wire behaviour. *)
  QCheck.Test.make ~name:"header prediction = state machine under loss/reordering" ~count:8
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let mk () =
        Fault.create ~rng:(Rng.create ~seed) ~drop:0.02 ~duplicate:0.02 ~reorder:0.08 ()
      in
      let got_f, want, segs_f, rexmit_f, _, _, _ =
        transfer ~fault:(mk ()) ~params:(predicted_params true) 30_000
      in
      let got_s, _, segs_s, rexmit_s, packs, pdata, _ =
        transfer ~fault:(mk ()) ~params:(predicted_params false) 30_000
      in
      String.equal got_f want && String.equal got_s want && segs_f = segs_s
      && rexmit_f = rexmit_s
      && packs + pdata = 0)

let test_per_conn_fastpath_counters () =
  let w = make_world ~tcp_params:(predicted_params true) () in
  let server_counts = ref (0, 0, 0) in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      ignore (read_all conn);
      server_counts := Tcp.fast_path_counts conn;
      Tcp.close conn);
  let client_counts = ref (0, 0, 0) in
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          Tcp.write c (View.of_string (pattern 40_000));
          Tcp.close c;
          Tcp.await_closed c;
          client_counts := Tcp.fast_path_counts c);
  let _, fdata, _ = !server_counts in
  let facks, _, cslow = !client_counts in
  let _, _, sslow = !server_counts in
  check_bool "receiver fast-pathed in-order data" true (fdata > 0);
  check_bool "sender fast-pathed pure acks" true (facks > 0);
  (* The handshake and FIN exchange always take the slow path. *)
  check_bool "slow path still used around the edges" true (cslow > 0 && sslow > 0)

(* --- fused checksum end to end ----------------------------------------- *)

let fused_params on = { Tcp_params.fast with Tcp_params.fused_checksum = on }

let test_fused_checksum_transparent () =
  let got_f, want, segs_f, _, _, _, cfail_f = transfer ~params:(fused_params true) 50_000 in
  let got_s, _, segs_s, _, _, _, cfail_s = transfer ~params:(fused_params false) 50_000 in
  check_str "fused delivery intact" want got_f;
  check_str "two-pass delivery intact" want got_s;
  check "identical segment counts" segs_s segs_f;
  check "no checksum failures (fused)" 0 cfail_f;
  check "no checksum failures (two-pass)" 0 cfail_s

let prop_fused_checksum_survives_corruption =
  (* With byte-flipping faults both configurations must reject the same
     corrupted segments and still converge on the full payload. *)
  QCheck.Test.make ~name:"fused checksum rejects corruption like the reference" ~count:6
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let mk () = Fault.create ~rng:(Rng.create ~seed) ~corrupt:0.03 ~drop:0.01 () in
      let got_f, want, _, _, _, _, cfail_f =
        transfer ~fault:(mk ()) ~params:(fused_params true) 20_000
      in
      let got_s, _, _, _, _, _, cfail_s =
        transfer ~fault:(mk ()) ~params:(fused_params false) 20_000
      in
      String.equal got_f want && String.equal got_s want && cfail_f = cfail_s)

(* --- zero-copy data path vs the copying oracle ------------------------- *)

let zc_params = { Tcp_params.fast with Tcp_params.zero_copy = true }

(* One bulk transfer a->b at the engine level, the sender handing the
   data over in randomized odd-length fragments.  Under zero copy each
   fragment is queued by reference ([write_owned]) with a release that
   must fire exactly once; the receiver drains through the loaning read
   on both configurations (it degrades to a plain pop on the copying
   one).  Returns enough to check the paths are behaviourally
   indistinguishable. *)
let transfer_zc ?fault ~zero_copy ~frag_seed n =
  let params = if zero_copy then zc_params else Tcp_params.fast in
  let w = make_world ~tcp_params:params ?fault () in
  let data = pattern n in
  let received = Buffer.create n in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      let rec drainloop () =
        match Tcp.read_loan conn ~max:4096 with
        | None -> ()
        | Some v ->
            Buffer.add_string received (View.to_string v);
            Tcp.return_loan conn (View.length v);
            drainloop ()
      in
      drainloop ();
      Tcp.close conn);
  let frags = ref 0 and releases = ref 0 in
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          let rng = Rng.create ~seed:frag_seed in
          let off = ref 0 in
          while !off < n do
            (* Odd lengths by construction half the time: the checksum
               must compose across odd/even fragment boundaries. *)
            let len = Stdlib.min (n - !off) (1 + Rng.int rng 1200) in
            let v = View.of_string (String.sub data !off len) in
            incr frags;
            if zero_copy then Tcp.write_owned c v ~release:(fun () -> incr releases)
            else Tcp.write c v;
            off := !off + len
          done;
          Tcp.close c;
          Tcp.await_closed c);
  let tcp_a = w.a.stack.Stack.tcp and tcp_b = w.b.stack.Stack.tcp in
  ( Buffer.contents received,
    data,
    Tcp.segments_out tcp_a + Tcp.segments_out tcp_b,
    Tcp.retransmissions tcp_a + Tcp.retransmissions tcp_b,
    !frags,
    !releases )

let prop_zero_copy_differential =
  (* The acceptance bar: across randomized loss/reorder/duplication and
     fragment mixes, the scatter-gather send queue must be a drop-in for
     the copying one — byte-identical delivery, identical wire behaviour
     (segment and retransmission counts), and every loaned buffer
     released exactly once. *)
  QCheck.Test.make ~name:"zero-copy sendq = copying sendq under loss/reorder/duplication"
    ~count:1000
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2048 + Rng.int rng 4097 in
      let frag_seed = 1 + Rng.int rng 1_000_000 in
      let mk () =
        Fault.create ~rng:(Rng.create ~seed) ~drop:0.02 ~duplicate:0.02 ~reorder:0.08 ()
      in
      let got_z, want, segs_z, rexmit_z, frags, releases =
        transfer_zc ~fault:(mk ()) ~zero_copy:true ~frag_seed n
      in
      let got_c, _, segs_c, rexmit_c, _, _ =
        transfer_zc ~fault:(mk ()) ~zero_copy:false ~frag_seed n
      in
      String.equal got_z want && String.equal got_c want && segs_z = segs_c
      && rexmit_z = rexmit_c && releases = frags)

let test_loan_backpressure_reopens () =
  (* Loans held by the application keep occupying receive buffering: the
     advertised window must close (stalling the sender) rather than let
     the pool be overrun, and returning the loans must reopen it — the
     transfer completes, no deadlock. *)
  let w = make_world ~tcp_params:zc_params () in
  let n = 3 * zc_params.Tcp_params.rcv_buf in
  let data = pattern n in
  let window_closed = ref false in
  let received = Buffer.create n in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      (* Phase 1: hoard loans until a full receive buffer is out. *)
      let held = ref [] in
      while Tcp.loaned_bytes conn < zc_params.Tcp_params.rcv_buf do
        match Tcp.read_loan conn ~max:4096 with
        | None -> failwith "eof before the window closed"
        | Some v -> held := v :: !held
      done;
      window_closed := Tcp.loaned_bytes conn >= zc_params.Tcp_params.rcv_buf;
      (* Let the sender run into the closed window before releasing. *)
      Sched.sleep w.sched (Time.ms 500);
      List.iter
        (fun v ->
          Buffer.add_string received (View.to_string v);
          Tcp.return_loan conn (View.length v))
        (List.rev !held);
      (* Phase 2: drain normally, returning immediately. *)
      let rec drainloop () =
        match Tcp.read_loan conn ~max:65536 with
        | None -> ()
        | Some v ->
            Buffer.add_string received (View.to_string v);
            Tcp.return_loan conn (View.length v);
            drainloop ()
      in
      drainloop ();
      Tcp.close conn);
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          Tcp.write c (View.of_string data);
          Tcp.close c;
          Tcp.await_closed c);
  check_bool "a full receive buffer was out on loan" true !window_closed;
  check_str "complete delivery after the window reopened" data (Buffer.contents received)

(* --- zero-copy end to end through the user-level library --------------- *)

module W = Uln_core.World
module Sockets = Uln_core.Sockets
module Machine = Uln_host.Machine
module Cpu = Uln_host.Cpu

let userlib_zc_params = { Tcp_params.default with Tcp_params.zero_copy = true }

(* A patterned transfer through the full userlib organization (registry
   handoff, channels, the socket ops) on a clean link; returns the
   received bytes and total segments on the wire. *)
let userlib_transfer ~zero_copy n =
  let params = if zero_copy then userlib_zc_params else Tcp_params.default in
  let w = W.create ~tcp_params:params ~network:W.Ethernet ~org:Uln_core.Organization.User_library () in
  let sched = W.sched w in
  let data = pattern n in
  let received = Buffer.create n in
  let server_app = W.app w ~host:1 "sink" in
  let client_app = W.app w ~host:0 "source" in
  Sched.spawn sched ~name:"sink" (fun () ->
      let l = server_app.Sockets.listen ~port:7001 in
      let conn = l.Sockets.accept () in
      let rec drainloop () =
        match conn.Sockets.recv_loan ~max:65536 with
        | None -> ()
        | Some v ->
            Buffer.add_string received (View.to_string v);
            conn.Sockets.return_loan v;
            drainloop ()
      in
      drainloop ();
      conn.Sockets.close ());
  Sched.block_on sched (fun () ->
      match client_app.Sockets.connect ~src_port:0 ~dst:(W.host_ip w 1) ~dst_port:7001 with
      | Error e -> failwith e
      | Ok conn ->
          let off = ref 0 in
          while !off < n do
            let len = Stdlib.min (n - !off) 997 in
            (match conn.Sockets.alloc_tx len with
            | Some owned ->
                View.blit_from_string data !off owned 0 len;
                conn.Sockets.send_owned owned
            | None -> conn.Sockets.send (View.of_string (String.sub data !off len)));
            off := !off + len
          done;
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  let segments =
    match (W.host_stack w 0, W.host_stack w 1) with
    | Some s0, Some s1 ->
        Tcp.segments_out s0.Stack.tcp + Tcp.segments_out s1.Stack.tcp
    | _ -> -1
  in
  (Buffer.contents received, data, segments, w)

let test_userlib_zero_copy_end_to_end () =
  let got_z, want, segs_z, _ = userlib_transfer ~zero_copy:true 50_000 in
  let got_c, _, segs_c, _ = userlib_transfer ~zero_copy:false 50_000 in
  check_str "zero-copy delivery byte-identical" want got_z;
  check_str "copying delivery byte-identical" want got_c;
  check "identical segment counts" segs_c segs_z

let test_zero_copy_charges_no_copy_bytes () =
  (* The accounting acceptance criterion: with [zero_copy] on, a userlib
     bulk transfer charges zero copy time on either host — every payload
     byte is touched exactly once, by the checksum pass. *)
  let w =
    W.create ~tcp_params:userlib_zc_params ~network:W.Ethernet
      ~org:Uln_core.Organization.User_library ()
  in
  let r = Uln_workload.Bulk.run ~total_bytes:200_000 ~write_size:4096 w in
  check_bool "transfer completed" true (r.Uln_workload.Bulk.bytes >= 200_000);
  for host = 0 to 1 do
    let cpu = (W.machine w host).Machine.cpu in
    check (Printf.sprintf "host %d: zero copy ns" host) 0 (Cpu.copy_ns cpu);
    check (Printf.sprintf "host %d: zero fused copy+checksum ns" host) 0
      (Cpu.copy_checksum_ns cpu);
    check_bool
      (Printf.sprintf "host %d: checksum pass still charged" host)
      true
      (Cpu.checksum_ns cpu > 0)
  done

let test_copying_oracle_still_copies () =
  (* The differential partner: the same transfer with [zero_copy] off
     must charge copy time — otherwise the assertion above is vacuous. *)
  let w =
    W.create ~tcp_params:Tcp_params.default ~network:W.Ethernet
      ~org:Uln_core.Organization.User_library ()
  in
  let r = Uln_workload.Bulk.run ~total_bytes:200_000 ~write_size:4096 w in
  check_bool "transfer completed" true (r.Uln_workload.Bulk.bytes >= 200_000);
  let copied =
    (Cpu.copy_ns (W.machine w 0).Machine.cpu + Cpu.copy_checksum_ns (W.machine w 0).Machine.cpu)
    + Cpu.copy_ns (W.machine w 1).Machine.cpu
    + Cpu.copy_checksum_ns (W.machine w 1).Machine.cpu
  in
  check_bool "copying path charges copy time" true (copied > 0)

(* --- bench JSON emission ----------------------------------------------- *)

module Jout = Uln_workload.Jout

let test_jout_non_finite () =
  check_str "nan is null" "null" (Jout.float Float.nan);
  check_str "+inf is null" "null" (Jout.float Float.infinity);
  check_str "-inf is null" "null" (Jout.float Float.neg_infinity);
  check_str "integer float" "6.0" (Jout.float 6.0);
  check_str "none is null" "null" (Jout.opt None)

let test_jout_validate () =
  check_bool "object parses" true
    (Jout.validate "{\"a\": [1, 2.5, null, \"x\\n\"], \"b\": {}}" = Ok ());
  check_bool "nan literal rejected" true (Jout.validate "{\"a\": nan}" <> Ok ());
  check_bool "trailing garbage rejected" true (Jout.validate "[1] x" <> Ok ());
  check_bool "truncated rejected" true (Jout.validate "[1, 2" <> Ok ());
  let row = Printf.sprintf "[{\"v\": %s, \"w\": %s}]" (Jout.float Float.nan) (Jout.float 3.25) in
  check_bool "emitted row round-trips" true (Jout.validate row = Ok ())

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "fastpath"
    [ ( "checksum",
        [ qc prop_of_view_matches_reference;
          qc prop_of_mbuf_matches_reference;
          qc prop_blit_sum;
          qc prop_peek_sum;
          qc prop_encode_with_payload_sum ] );
      ( "flow-cache",
        [ qc prop_cache_matches_scan;
          Alcotest.test_case "hit cost flat in table size" `Quick test_hit_cost_flat;
          Alcotest.test_case "invalidation on install/remove" `Quick test_cache_invalidation;
          Alcotest.test_case "shadow-unsafe accepts skipped" `Quick
            test_shadowed_filter_not_cached ] );
      ( "header-prediction",
        [ Alcotest.test_case "transparent on a clean link" `Quick
            test_prediction_transparent_clean_link;
          qc prop_prediction_equivalent_under_faults;
          Alcotest.test_case "per-connection counters" `Quick test_per_conn_fastpath_counters ]
      );
      ( "fused-checksum",
        [ Alcotest.test_case "transparent end to end" `Quick test_fused_checksum_transparent;
          qc prop_fused_checksum_survives_corruption ] );
      ( "zero-copy",
        [ qc prop_zero_copy_differential;
          Alcotest.test_case "loan back-pressure reopens" `Quick test_loan_backpressure_reopens;
          Alcotest.test_case "userlib end to end identical" `Quick
            test_userlib_zero_copy_end_to_end;
          Alcotest.test_case "charges no copy bytes" `Quick test_zero_copy_charges_no_copy_bytes;
          Alcotest.test_case "copying oracle still copies" `Quick
            test_copying_oracle_still_copies ] );
      ( "bench-json",
        [ Alcotest.test_case "non-finite floats are null" `Quick test_jout_non_finite;
          Alcotest.test_case "validator" `Quick test_jout_validate ] ) ]
