(* Tests for the modern TCP fast path: the general option codec
   (round-trip, nop padding, malformed-list rejection), unknown-option
   and window-clamp accounting, and the ablation differentials that are
   the switch-lint oracles for window_scale / timestamps / sack /
   cong_control. *)

open Tutil
module Rng = Uln_engine.Rng
module Tcp_wire = Uln_proto.Tcp_wire
module Tcp_seq = Uln_proto.Tcp_seq
module Checksum = Uln_proto.Checksum
module Ipv4 = Uln_proto.Ipv4

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let qc = QCheck_alcotest.to_alcotest
let src_ip = Ip.of_string "10.0.0.1"
let dst_ip = Ip.of_string "10.0.0.2"

(* --- option codec round trip ------------------------------------------- *)

(* Either a SYN-style option set (the negotiation kinds) or an ACK-style
   one (timestamps + SACK blocks).  Both shapes fit the 40-byte option
   budget; every kind at once with three SACK blocks would not — which
   is also why real stacks never emit that combination. *)
let random_opts rng =
  let flip () = Rng.int rng 2 = 0 in
  let u32 () = Rng.int rng 0x3FFFFFFF in
  if flip () then
    { Tcp_wire.no_opts with
      Tcp_wire.mss = (if flip () then Some (Rng.int rng 0x10000) else None);
      wscale = (if flip () then Some (Rng.int rng 15) else None);
      sack_ok = flip ();
      ts = (if flip () then Some (u32 (), u32 ()) else None) }
  else
    let block _ =
      let l = u32 () in
      (l, Tcp_seq.add l (1 + Rng.int rng 65535))
    in
    { Tcp_wire.no_opts with
      Tcp_wire.ts = (if flip () then Some (u32 (), u32 ()) else None);
      sack = List.init (Rng.int rng 4) block }

let random_segment rng =
  { Tcp_wire.src_port = Rng.int rng 0x10000;
    dst_port = Rng.int rng 0x10000;
    seq = Rng.int rng 0x3FFFFFFF;
    ack = Rng.int rng 0x3FFFFFFF;
    flags =
      { Tcp_wire.fin = Rng.int rng 2 = 0;
        syn = false;
        rst = false;
        psh = Rng.int rng 2 = 0;
        ack = true };
    wnd = Rng.int rng 0x10000;
    opts = random_opts rng;
    payload = Mbuf.of_string (String.init (Rng.int rng 120) (fun _ -> Char.chr (Rng.int rng 256))) }

let prop_opts_roundtrip =
  QCheck.Test.make ~name:"option codec round-trips (incl. nop padding)" ~count:300
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let s = random_segment rng in
      let m = Tcp_wire.encode ~src_ip ~dst_ip s in
      (* The wire header is nop-padded to a 4-byte multiple. *)
      let hlen = Mbuf.length m - Mbuf.length s.Tcp_wire.payload in
      if hlen <> Tcp_wire.header_size + Tcp_wire.opts_length s.Tcp_wire.opts then false
      else if hlen mod 4 <> 0 then false
      else
        match Tcp_wire.decode ~src_ip ~dst_ip m with
        | None -> false
        | Some d ->
            d.Tcp_wire.src_port = s.Tcp_wire.src_port
            && d.Tcp_wire.seq = s.Tcp_wire.seq
            && d.Tcp_wire.ack = s.Tcp_wire.ack
            && d.Tcp_wire.wnd = s.Tcp_wire.wnd
            && d.Tcp_wire.opts = s.Tcp_wire.opts
            && String.equal
                 (Mbuf.to_string d.Tcp_wire.payload)
                 (Mbuf.to_string s.Tcp_wire.payload))

(* --- hand-rolled segments (arbitrary option bytes) --------------------- *)

(* Build a raw wire segment with the given option bytes and a correct
   checksum, bypassing [Tcp_wire.encode] — the codec under test must
   cope with option lists the encoder would never produce. *)
let raw_seg ?(src_port = 5000) ?(dst_port = 80) ?(seq = 0) ?(payload = "") ~opt_bytes
    ~src_ip ~dst_ip () =
  let hlen = Tcp_wire.header_size + String.length opt_bytes in
  assert (hlen mod 4 = 0);
  let h = View.create hlen in
  View.set_uint16 h 0 src_port;
  View.set_uint16 h 2 dst_port;
  View.set_uint32 h 4 (Tcp_seq.to_int32 seq);
  View.set_uint32 h 8 0l;
  View.set_uint8 h 12 ((hlen / 4) lsl 4);
  View.set_uint8 h 13 0x10 (* ACK *);
  View.set_uint16 h 14 1000;
  View.set_uint16 h 16 0;
  View.set_uint16 h 18 0;
  String.iteri (fun i c -> View.set_uint8 h (Tcp_wire.header_size + i) (Char.code c)) opt_bytes;
  let m = Mbuf.prepend h (Mbuf.of_string payload) in
  let pseudo = Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto:6 ~len:(Mbuf.length m) in
  View.set_uint16 h 16 (Checksum.of_mbuf ~init:pseudo m);
  m

let decode_raw opt_bytes =
  Tcp_wire.decode ~src_ip ~dst_ip (raw_seg ~opt_bytes ~src_ip ~dst_ip ())

let test_malformed_options_rejected () =
  let rejected label opt_bytes =
    match decode_raw opt_bytes with
    | None -> ()
    | Some _ -> Alcotest.failf "%s: malformed option list accepted" label
  in
  rejected "truncated body" "\x01\x02\x04\xaa" (* nop, then MSS cut short *);
  rejected "length 1" "\x05\x01\x01\x01";
  rejected "length 0" "\x63\x00\x01\x01";
  rejected "known kind, wrong length" "\x03\x04\x00\x00" (* wscale with olen 4 *);
  rejected "unknown kind overruns" "\x63\x10\x00\x00" (* olen 16 in a 4-byte list *);
  (* Structurally sound lists still parse. *)
  (match decode_raw "\x63\x04\x00\x00" with
  | Some d -> Alcotest.(check (list int)) "unknown kind surfaced" [ 0x63 ] d.Tcp_wire.opts.Tcp_wire.unknown
  | None -> Alcotest.fail "well-formed unknown option rejected");
  match decode_raw "\x00\x63\x63\x63" with
  | Some d -> check_bool "end-of-options stops the walk" true (d.Tcp_wire.opts.Tcp_wire.unknown = [])
  | None -> Alcotest.fail "end-of-options marker rejected"

let prop_random_option_bytes_never_raise =
  QCheck.Test.make ~name:"random option bytes: decode returns, never raises" ~count:300
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let len = 4 * Rng.int rng 11 in
      let opt_bytes = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
      match decode_raw opt_bytes with _ -> true)

(* --- unknown-option and clamp accounting on a live engine -------------- *)

let test_unknown_option_counters () =
  let w = make_world () in
  let received = ref "" and server_conn = ref None in
  let data = pattern 5_000 in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      server_conn := Some conn;
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          (* An experimental option (kind 0x63) injected on the
             established 4-tuple: skipped, counted, connection
             unharmed.  And a structurally broken list: rejected whole
             (counted with the checksum failures), still no exception. *)
          let inject opt_bytes =
            Ipv4.output w.a.stack.Stack.ip ~proto:6 ~dst:w.b.ip
              (raw_seg ~src_port:5000 ~dst_port:80 ~opt_bytes ~src_ip:w.a.ip ~dst_ip:w.b.ip ())
          in
          inject "\x63\x04\x00\x00";
          inject "\x63\x04\x00\x00";
          inject "\x03\x04\x00\x00" (* wscale with the wrong length *);
          Tcp.write c (View.of_string data);
          Tcp.close c;
          Tcp.await_closed c);
  let tcp_b = w.b.stack.Stack.tcp in
  check_str "transfer survives the junk" data !received;
  check "engine-wide unknown-option count" 2 (Tcp.unknown_options tcp_b);
  (match !server_conn with
  | Some conn -> check "per-connection unknown-option count" 2 (Tcp.conn_options conn).Tcp.co_unknown_opts
  | None -> Alcotest.fail "server conn not captured");
  check_bool "malformed list rejected whole" true (Tcp.checksum_failures tcp_b >= 1)

let test_encode_wnd_overflow_typed_error () =
  let seg = { (random_segment (Rng.create ~seed:1)) with Tcp_wire.wnd = 0x10000; opts = Tcp_wire.no_opts } in
  Alcotest.check_raises "oversized window is a typed error"
    (Invalid_argument "Tcp_wire.encode: window exceeds 16 bits (scale or clamp before encode)")
    (fun () -> ignore (Tcp_wire.encode ~src_ip ~dst_ip seg))

(* --- transfers with per-connection option state ------------------------ *)

(* One bulk transfer a->b; returns what b read plus the client's
   negotiated option state and the sender engine's counters.
   Deterministic given the fault seed. *)
let transfer ?fault ~params n =
  let w = make_world ~tcp_params:params ?fault () in
  let data = pattern n in
  let received = ref "" in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      received := read_all conn;
      Tcp.close conn);
  let copts = ref None in
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          Tcp.write c (View.of_string data);
          Tcp.await_drained c;
          copts := Some (Tcp.conn_options c);
          Tcp.close c;
          Tcp.await_closed c);
  let tcp_a = w.a.stack.Stack.tcp in
  (!received, data, Tcp.segments_out tcp_a, Tcp.retransmissions tcp_a, Option.get !copts)

let test_wnd_clamp_counter () =
  let big = { Tcp_params.fast with Tcp_params.snd_buf = 200_000; rcv_buf = 200_000 } in
  let _, _, _, _, unscaled = transfer ~params:big 60_000 in
  let _, _, _, _, scaled = transfer ~params:{ big with Tcp_params.window_scale = true } 60_000 in
  check_bool "unscaled 200KB buffer clamps the advertised window" true
    (unscaled.Tcp.co_wnd_clamps > 0);
  (* Scaled connections may clamp only on the (unscaled) SYN itself. *)
  check_bool "window scaling removes the clamps" true
    (scaled.Tcp.co_wnd_clamps <= 2 && scaled.Tcp.co_wnd_clamps < unscaled.Tcp.co_wnd_clamps)

(* --- the ablation differentials (switch-lint oracles) ------------------ *)

let mk_fault seed = Fault.create ~rng:(Rng.create ~seed) ~drop:0.02 ~duplicate:0.02 ~reorder:0.05 ()

let prop_wscale_differential =
  QCheck.Test.make ~name:"window scaling: same bytes delivered, windows actually scaled"
    ~count:6
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let off = { Tcp_params.fast with Tcp_params.snd_buf = 262_144; rcv_buf = 262_144 } in
      let on = { off with Tcp_params.window_scale = true } in
      let got_off, want, _, _, co_off = transfer ~fault:(mk_fault seed) ~params:off 80_000 in
      let got_on, _, _, _, co_on = transfer ~fault:(mk_fault seed) ~params:on 80_000 in
      String.equal got_off want
      && String.equal got_on want
      && co_on.Tcp.co_snd_scale > 0
      && co_on.Tcp.co_rcv_scale > 0
      && co_off.Tcp.co_snd_scale = 0
      && co_off.Tcp.co_rcv_scale = 0
      && co_off.Tcp.co_wnd_clamps > co_on.Tcp.co_wnd_clamps)

let prop_timestamps_differential =
  QCheck.Test.make ~name:"timestamps: same bytes delivered, TS negotiated only when on"
    ~count:6
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let on = { Tcp_params.fast with Tcp_params.timestamps = true } in
      let got_off, want, _, _, co_off =
        transfer ~fault:(mk_fault seed) ~params:Tcp_params.fast 40_000
      in
      let got_on, _, _, _, co_on = transfer ~fault:(mk_fault seed) ~params:on 40_000 in
      String.equal got_off want
      && String.equal got_on want
      && co_on.Tcp.co_timestamps
      && not co_off.Tcp.co_timestamps)

let prop_sack_differential =
  QCheck.Test.make
    ~name:"SACK: same bytes delivered under loss, no more segments than baseline" ~count:6
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let mk () = Fault.create ~rng:(Rng.create ~seed) ~drop:0.03 ~duplicate:0.02 ~reorder:0.05 () in
      let on = { Tcp_params.fast with Tcp_params.sack = true } in
      let got_off, want, segs_off, _, co_off =
        transfer ~fault:(mk ()) ~params:Tcp_params.fast 60_000
      in
      let got_on, _, segs_on, _, co_on = transfer ~fault:(mk ()) ~params:on 60_000 in
      String.equal got_off want
      && String.equal got_on want
      && co_on.Tcp.co_sack
      && (not co_off.Tcp.co_sack)
      && co_off.Tcp.co_sack_rexmits = 0
      (* On this small-window world SACK and plain recovery cost within
         noise of each other; the strict <= claim is the deterministic
         high-BDP check below.  Here: no pathological segment blowup. *)
      && segs_on <= segs_off + (segs_off / 4))

let prop_cong_control_differential =
  QCheck.Test.make
    ~name:"congestion control: all algorithms deliver the bytes under loss" ~count:4
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      List.for_all
        (fun cc ->
          let params = { Tcp_params.fast with Tcp_params.sack = true; cong_control = cc } in
          let got, want, _, _, co = transfer ~fault:(mk_fault seed) ~params 60_000 in
          String.equal got want
          && String.equal co.Tcp.co_cong
               (match cc with `Reno -> "reno" | `Newreno -> "newreno" | `Cubic -> "cubic"))
        [ `Reno; `Newreno; `Cubic ])

(* On a clean link a short transfer never leaves slow start, where the
   three algorithms are defined to behave identically: the wire traffic
   must be byte-identical.  (They diverge only in recovery and
   congestion avoidance — that is what BENCH_wan.json measures.) *)
let wire_digest ~params n =
  let w = make_world ~tcp_params:params () in
  let buf = Buffer.create 4096 in
  Link.set_monitor w.link (fun _t f ->
      Buffer.add_string buf (Mbuf.to_string f.Frame.payload);
      Buffer.add_char buf '|');
  let received = ref "" in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          Tcp.write c (View.of_string (pattern n));
          Tcp.close c;
          Tcp.await_closed c);
  check_str "clean transfer delivers" (pattern n) !received;
  Digest.string (Buffer.contents buf)

let test_cong_control_identical_in_slow_start () =
  let digest cc =
    wire_digest ~params:{ Tcp_params.fast with Tcp_params.cong_control = cc } 40_000
  in
  let reno = digest `Reno in
  check_str "newreno = reno on a clean link" (Digest.to_hex reno) (Digest.to_hex (digest `Newreno));
  check_str "cubic = reno on a clean link" (Digest.to_hex reno) (Digest.to_hex (digest `Cubic))

(* --- WAN preset sanity -------------------------------------------------- *)

let test_sack_fewer_segments_high_bdp () =
  (* Deterministic lossy high-BDP runs: with a large scaled window in
     flight, go-back-N resends data the receiver already holds; the
     scoreboard does not.  SACK must never cost segments here. *)
  let base =
    { Tcp_params.wan with Tcp_params.sack = false; cong_control = `Newreno }
  in
  let run params =
    Uln_workload.Wan.measure ~total_bytes:2_000_000 ~delay:(Time.ms 40) ~loss:0.01
      ~params ()
  in
  let off = run base and on = run { base with Tcp_params.sack = true } in
  check "baseline delivers" 2_000_000 off.Uln_workload.Wan.bytes;
  check "sack delivers" 2_000_000 on.Uln_workload.Wan.bytes;
  check_bool "sack recovery ran" true (on.Uln_workload.Wan.sack_rexmits > 0);
  check_bool "sack sends no more segments than plain recovery" true
    (on.Uln_workload.Wan.segments_out <= off.Uln_workload.Wan.segments_out)

let test_wan_preset_end_to_end () =
  (* The full modern stack over the lossy WAN model: everything
     negotiates, data arrives intact, SACK recovery actually runs. *)
  let r =
    Uln_workload.Wan.measure ~total_bytes:1_000_000 ~delay:(Time.ms 5) ~loss:0.005
      ~params:Tcp_params.wan ()
  in
  check_bool "goodput positive" true (r.Uln_workload.Wan.goodput_mbps > 0.);
  check "all bytes arrive" 1_000_000 r.Uln_workload.Wan.bytes;
  check_bool "windows scaled" true (r.Uln_workload.Wan.snd_scale > 0);
  check_bool "sack negotiated" true r.Uln_workload.Wan.sack_negotiated;
  check_bool "sack recovery ran" true (r.Uln_workload.Wan.sack_rexmits > 0);
  check_str "cubic selected" "cubic" r.Uln_workload.Wan.cong

let () =
  Alcotest.run "wan"
    [ ( "codec",
        [ qc prop_opts_roundtrip;
          qc prop_random_option_bytes_never_raise;
          Alcotest.test_case "malformed option lists rejected" `Quick
            test_malformed_options_rejected;
          Alcotest.test_case "oversized window encode" `Quick test_encode_wnd_overflow_typed_error ] );
      ( "accounting",
        [ Alcotest.test_case "unknown-option counters" `Quick test_unknown_option_counters;
          Alcotest.test_case "window-clamp counter" `Quick test_wnd_clamp_counter ] );
      ( "differentials",
        [ qc prop_wscale_differential;
          qc prop_timestamps_differential;
          qc prop_sack_differential;
          qc prop_cong_control_differential;
          Alcotest.test_case "cong control identical in slow start" `Quick
            test_cong_control_identical_in_slow_start ] );
      ( "wan",
        [ Alcotest.test_case "wan preset end to end" `Slow test_wan_preset_end_to_end;
          Alcotest.test_case "sack segment count at high BDP" `Slow
            test_sack_fewer_segments_high_bdp ] ) ]
