module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module Rng = Uln_engine.Rng
module Cpu = Uln_host.Cpu
module Costs = Uln_host.Costs
module Capability = Uln_host.Capability
module Addr_space = Uln_host.Addr_space
module Shared_mem = Uln_host.Shared_mem
module Ipc = Uln_host.Ipc
module Machine = Uln_host.Machine

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- cpu -------------------------------------------------------------- *)

let test_cpu_serializes () =
  (* Two threads each burning 1 ms on one CPU finish at 1 ms and 2 ms. *)
  let s = Sched.create () in
  let cpu = Cpu.create s ~name:"cpu" in
  let t1 = ref Time.zero and t2 = ref Time.zero in
  Sched.spawn s (fun () ->
      Cpu.use cpu (Time.ms 1);
      t1 := Sched.now s);
  Sched.spawn s (fun () ->
      Cpu.use cpu (Time.ms 1);
      t2 := Sched.now s);
  Sched.run s;
  check "first" (Time.ms 1) (Time.to_ns !t1);
  check "second serialized" (Time.ms 2) (Time.to_ns !t2);
  check "busy accounted" (Time.ms 2) (Cpu.busy_ns cpu)

let test_cpu_async () =
  let s = Sched.create () in
  let cpu = Cpu.create s ~name:"cpu" in
  let fired = ref Time.zero in
  Cpu.use_async cpu (Time.us 500) (fun () -> fired := Sched.now s);
  Sched.run s;
  check "completion time" (Time.us 500) (Time.to_ns !fired)

let test_cpu_utilization () =
  let s = Sched.create () in
  let cpu = Cpu.create s ~name:"cpu" in
  Sched.spawn s (fun () ->
      Cpu.use cpu (Time.ms 3);
      Sched.sleep s (Time.ms 7));
  Sched.run s;
  Alcotest.(check (float 0.01)) "30%" 0.3 (Cpu.utilization cpu (Sched.now s))

(* --- capabilities ------------------------------------------------------- *)

let test_capability_deref_and_revoke () =
  let cap = Capability.mint ~tag:"chan" 42 in
  check "deref" 42 (Capability.deref cap);
  Capability.revoke cap;
  check_bool "revoked" true
    (try
       ignore (Capability.deref cap);
       false
     with Capability.Violation _ -> true)

let test_capability_identity () =
  let a = Capability.mint ~tag:"x" 0 in
  let b = Capability.mint ~tag:"x" 0 in
  check_bool "distinct" false (Capability.same a b);
  check_bool "self" true (Capability.same a a)

(* --- address spaces -------------------------------------------------------- *)

let test_domain_privilege () =
  let k = Addr_space.create Addr_space.Kernel "k" in
  let s = Addr_space.create Addr_space.Server "s" in
  let u = Addr_space.create Addr_space.User "u" in
  check_bool "kernel" true (Addr_space.is_privileged k);
  check_bool "server" true (Addr_space.is_privileged s);
  check_bool "user" false (Addr_space.is_privileged u)

(* --- shared memory ------------------------------------------------------------ *)

let test_shared_mem_mapping_enforced () =
  let region = Shared_mem.create ~name:"r" ~count:4 ~size:128 in
  let a = Addr_space.create Addr_space.User "a" in
  let b = Addr_space.create Addr_space.User "b" in
  Shared_mem.map region a;
  check_bool "mapped alloc works" true (Shared_mem.alloc region a <> None);
  check_bool "unmapped alloc rejected" true
    (try
       ignore (Shared_mem.alloc region b);
       false
     with Capability.Violation _ -> true);
  Shared_mem.unmap region a;
  check_bool "after unmap rejected" true
    (try
       Shared_mem.assert_mapped region a;
       false
     with Capability.Violation _ -> true)

let test_shared_mem_destroy () =
  let region = Shared_mem.create ~name:"r" ~count:2 ~size:64 in
  let a = Addr_space.create Addr_space.User "a" in
  Shared_mem.map region a;
  Shared_mem.destroy region;
  check_bool "destroyed" true
    (try
       Shared_mem.assert_mapped region a;
       false
     with Capability.Violation _ -> true);
  check_bool "alloc after destroy rejected" true
    (try
       ignore (Shared_mem.alloc region a);
       false
     with Capability.Violation _ -> true)

let test_shared_mem_exhaustion () =
  (* Running the pool dry is not an error — the caller sees [None], as a
     driver sees an empty NIC ring — but the event is counted. *)
  let region = Shared_mem.create ~name:"r" ~count:2 ~size:64 in
  let a = Addr_space.create Addr_space.User "a" in
  Shared_mem.map region a;
  let b1 = Shared_mem.alloc region a and b2 = Shared_mem.alloc region a in
  check_bool "two allocs succeed" true (b1 <> None && b2 <> None);
  check "no exhaustion yet" 0 (Shared_mem.exhausted region);
  check_bool "third alloc returns None" true (Shared_mem.alloc region a = None);
  check_bool "fourth alloc returns None" true (Shared_mem.alloc region a = None);
  check "exhaustion counted per failed alloc" 2 (Shared_mem.exhausted region);
  check "all in use" 2 (Shared_mem.in_use region);
  (match b1 with Some v -> Shared_mem.free region a v | None -> ());
  check_bool "free replenishes" true (Shared_mem.alloc region a <> None)

let test_shared_mem_double_free () =
  let region = Shared_mem.create ~name:"r" ~count:2 ~size:64 in
  let a = Addr_space.create Addr_space.User "a" in
  Shared_mem.map region a;
  match Shared_mem.alloc region a with
  | None -> Alcotest.fail "alloc failed"
  | Some v ->
      Shared_mem.free region a v;
      check_bool "double free detected" true
        (try
           Shared_mem.free region a v;
           false
         with Invalid_argument _ -> true);
      check_bool "foreign view rejected" true
        (try
           Shared_mem.free region a (Uln_buf.View.create 64);
           false
         with Invalid_argument _ -> true)

let test_shared_mem_subview_free () =
  (* The loaning socket layer hands out [View.sub] prefixes of pool
     buffers (a loan sized to the write); freeing through the sub-view
     must find the backing buffer. *)
  let region = Shared_mem.create ~name:"r" ~count:1 ~size:128 in
  let a = Addr_space.create Addr_space.User "a" in
  Shared_mem.map region a;
  match Shared_mem.alloc region a with
  | None -> Alcotest.fail "alloc failed"
  | Some v ->
      let sub = Uln_buf.View.sub v 0 40 in
      check_bool "pool owns the sub-view" true (Shared_mem.owns region sub);
      Shared_mem.free region a sub;
      check "buffer back in the pool" 1 (Shared_mem.available region)

(* --- IPC -------------------------------------------------------------------------- *)

let make_machine s = Machine.create s ~name:"m" ~costs:Costs.r3000 ~rng:(Rng.create ~seed:5)

let test_ipc_round_trip () =
  let s = Sched.create () in
  let m = make_machine s in
  let port = Ipc.create s m.Machine.cpu m.Machine.costs ~name:"adder" in
  Ipc.serve port (fun x -> (x + 1, 8));
  let got = Sched.block_on s (fun () -> Ipc.call port ~size:8 41) in
  check "reply" 42 got;
  check "one call" 1 (Ipc.calls port)

let test_ipc_charges_time () =
  let s = Sched.create () in
  let m = make_machine s in
  let port = Ipc.create s m.Machine.cpu m.Machine.costs ~name:"echo" in
  Ipc.serve port (fun x -> (x, 1024));
  let elapsed =
    Sched.block_on s (fun () ->
        let t0 = Sched.now s in
        let _ = Ipc.call port ~size:1024 0 in
        Time.diff (Sched.now s) t0)
  in
  (* At least two fixed transfers, two dispatch latencies, two switches. *)
  let c = Costs.r3000 in
  let floor_ns =
    (2 * c.Costs.ipc_fixed) + (2 * c.Costs.wakeup_latency) + (2 * c.Costs.context_switch)
  in
  check_bool "rpc cost floor" true (elapsed >= floor_ns)

let test_ipc_concurrent_handlers () =
  (* serve_concurrent: a blocked handler must not stall other calls. *)
  let s = Sched.create () in
  let m = make_machine s in
  let port = Ipc.create s m.Machine.cpu m.Machine.costs ~name:"mix" in
  let release = Uln_engine.Semaphore.create () in
  Ipc.serve_concurrent port (fun x ->
      if x = 1 then Uln_engine.Semaphore.wait release;
      (x * 10, 8));
  let results = ref [] in
  Sched.spawn s (fun () ->
      let r = Ipc.call port ~size:8 1 in
      results := ("slow", r) :: !results);
  Sched.spawn s (fun () ->
      let r = Ipc.call port ~size:8 2 in
      results := ("fast", r) :: !results;
      Uln_engine.Semaphore.signal release);
  Sched.run s;
  check "both completed" 2 (List.length !results);
  Alcotest.(check string) "fast finished first" "slow" (fst (List.hd !results))

let () =
  Alcotest.run "host"
    [ ( "cpu",
        [ Alcotest.test_case "serializes" `Quick test_cpu_serializes;
          Alcotest.test_case "async" `Quick test_cpu_async;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization ] );
      ( "capability",
        [ Alcotest.test_case "deref/revoke" `Quick test_capability_deref_and_revoke;
          Alcotest.test_case "identity" `Quick test_capability_identity ] );
      ("domains", [ Alcotest.test_case "privilege" `Quick test_domain_privilege ]);
      ( "shared_mem",
        [ Alcotest.test_case "mapping enforced" `Quick test_shared_mem_mapping_enforced;
          Alcotest.test_case "destroy" `Quick test_shared_mem_destroy;
          Alcotest.test_case "exhaustion counted" `Quick test_shared_mem_exhaustion;
          Alcotest.test_case "double free detected" `Quick test_shared_mem_double_free;
          Alcotest.test_case "sub-view free" `Quick test_shared_mem_subview_free ] );
      ( "ipc",
        [ Alcotest.test_case "round trip" `Quick test_ipc_round_trip;
          Alcotest.test_case "charges time" `Quick test_ipc_charges_time;
          Alcotest.test_case "concurrent handlers" `Quick test_ipc_concurrent_handlers ] ) ]
