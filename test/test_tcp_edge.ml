(* Edge-case TCP behaviour: sequence wraparound, zero-window stalls,
   simultaneous close, listener lifecycle.  These complement test_tcp.ml
   with the conditions a long-lived production stack must survive. *)

open Tutil
module Tcp_state = Uln_proto.Tcp_state
module Tcp_seq = Uln_proto.Tcp_seq

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_server w ~port f =
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port in
      let conn, _ = Tcp.accept l in
      f conn)

let connect_a w ~port =
  match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:port with
  | Ok (c, _) -> c
  | Error e -> failwith ("connect failed: " ^ e)

(* --- 32-bit sequence wraparound, end to end ----------------------------- *)

let test_transfer_across_sequence_wrap () =
  (* Establish normally, then rebase both directions' sequence numbers
     just below 2^32 via export/import, and push enough data through to
     wrap both.  Every comparison in the engine must survive it. *)
  let w = make_world () in
  let server_conn = ref None in
  with_server w ~port:80 (fun conn -> server_conn := Some conn);
  let n = 120_000 in
  let data = pattern n in
  let received = ref "" in
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Sched.sleep w.sched (Time.ms 200);
      let s = Option.get !server_conn in
      let ew conn = Option.get (Tcp.established_witness conn) in
      let snap_c = Tcp.export c ~witness:(ew c) in
      let snap_s = Tcp.export s ~witness:(ew s) in
      let near = 0xFFFF8000 in
      let mask = 0xFFFFFFFF in
      let d1 = (near - snap_c.Tcp.snap_snd_una) land mask in
      let d2 = (near + 0x4000 - snap_s.Tcp.snap_snd_una) land mask in
      let shift snap d_snd d_rcv =
        { snap with
          Tcp.snap_iss = Tcp_seq.add snap.Tcp.snap_iss d_snd;
          snap_snd_una = Tcp_seq.add snap.Tcp.snap_snd_una d_snd;
          snap_snd_nxt = Tcp_seq.add snap.Tcp.snap_snd_nxt d_snd;
          snap_rcv_nxt = Tcp_seq.add snap.Tcp.snap_rcv_nxt d_rcv }
      in
      let c2 = Tcp.import w.a.stack.Stack.tcp (shift snap_c d1 d2) in
      let s2 = Tcp.import w.b.stack.Stack.tcp (shift snap_s d2 d1) in
      Sched.spawn w.sched ~name:"wrap-drain" (fun () ->
          received := read_all s2;
          Tcp.close s2);
      Tcp.write c2 (View.of_string data);
      Tcp.close c2;
      Tcp.await_closed c2);
  check "length across wrap" n (String.length !received);
  check_bool "content across wrap" true (String.equal data !received)

(* --- zero window ---------------------------------------------------------- *)

let test_full_stall_then_resume () =
  (* The receiver reads nothing for far longer than the persist interval;
     the sender must sit in zero-window probing, then complete. *)
  let w = make_world () in
  let received = ref "" in
  with_server w ~port:80 (fun conn ->
      Sched.sleep w.sched (Time.sec 5);
      received := read_all conn;
      Tcp.close conn);
  let n = 50_000 in
  let data = pattern n in
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.write c (View.of_string data);
      Tcp.close c;
      Tcp.await_closed c);
  check "delivered after stall" n (String.length !received);
  check_bool "content" true (String.equal data !received)

let test_window_goes_to_zero () =
  let w = make_world () in
  let observed_zero = ref false in
  with_server w ~port:80 (fun conn ->
      (* Never read until the probe phase is well underway. *)
      Sched.sleep w.sched (Time.sec 4);
      let rec drain () = match Tcp.read conn ~max:65536 with None -> () | Some _ -> drain () in
      drain ();
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      (* More than the 16 KB receive buffer. *)
      Sched.spawn w.sched ~name:"writer" (fun () ->
          Tcp.write c (View.of_string (pattern 40_000));
          Tcp.close c);
      Sched.sleep w.sched (Time.sec 2);
      observed_zero := Tcp.bytes_queued c > 0;
      Tcp.await_closed c);
  check_bool "sender was window-blocked mid-transfer" true !observed_zero

(* --- simultaneous close ----------------------------------------------------- *)

let test_simultaneous_close () =
  let w = make_world () in
  let server_done = ref false in
  let server_conn = ref None in
  with_server w ~port:80 (fun conn -> server_conn := Some conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Sched.sleep w.sched (Time.ms 100);
      let s = Option.get !server_conn in
      (* Close both ends in the same instant. *)
      Sched.spawn w.sched ~name:"server-close" (fun () ->
          Tcp.close s;
          Tcp.await_closed s;
          server_done := true);
      Tcp.close c;
      Tcp.await_closed c;
      check_bool "client closed" true (Tcp.state c = Tcp_state.Closed));
  check_bool "server closed" true !server_done

(* --- listener lifecycle ------------------------------------------------------- *)

let test_closed_listener_refuses () =
  let w = make_world () in
  let r =
    run_to_completion w (fun () ->
        let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
        Tcp.close_listener w.b.stack.Stack.tcp l;
        Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80)
  in
  check_bool "refused after listener close" true (Result.is_error r)

let test_listener_port_reusable_after_close () =
  let w = make_world () in
  run_to_completion w (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      Tcp.close_listener w.b.stack.Stack.tcp l;
      (* Relisten on the same port must not raise. *)
      let l2 = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      Tcp.close_listener w.b.stack.Stack.tcp l2)

(* --- API misuse ------------------------------------------------------------------ *)

let test_write_after_close_rejected () =
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      (match Tcp.read conn ~max:16 with _ -> ());
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.close c;
      check_bool "write after close raises" true
        (try
           Tcp.write c (View.of_string "too late");
           false
         with Tcp.Connection_error _ -> true);
      Tcp.await_closed c)

let test_read_after_abort_raises () =
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      try ignore (Tcp.read conn ~max:16) with Tcp.Connection_error _ -> ());
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.abort c;
      check_bool "read after abort raises" true
        (try
           ignore (Tcp.read c ~max:16);
           false
         with Tcp.Connection_error _ -> true))

let test_double_close_harmless () =
  let w = make_world () in
  with_server w ~port:80 (fun conn ->
      (match Tcp.read conn ~max:16 with _ -> ());
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c = connect_a w ~port:80 in
      Tcp.close c;
      Tcp.close c;
      Tcp.close c;
      Tcp.await_closed c;
      check_bool "closed" true (Tcp.state c = Tcp_state.Closed))

let () =
  Alcotest.run "tcp-edge"
    [ ("wraparound", [ Alcotest.test_case "transfer across 2^32" `Quick test_transfer_across_sequence_wrap ]);
      ( "zero-window",
        [ Alcotest.test_case "full stall then resume" `Quick test_full_stall_then_resume;
          Alcotest.test_case "window reaches zero" `Quick test_window_goes_to_zero ] );
      ("close", [ Alcotest.test_case "simultaneous" `Quick test_simultaneous_close ]);
      ( "listener",
        [ Alcotest.test_case "closed refuses" `Quick test_closed_listener_refuses;
          Alcotest.test_case "port reusable" `Quick test_listener_port_reusable_after_close ] );
      ( "misuse",
        [ Alcotest.test_case "write after close" `Quick test_write_after_close_rejected;
          Alcotest.test_case "read after abort" `Quick test_read_after_abort_raises;
          Alcotest.test_case "double close" `Quick test_double_close_harmless ] ) ]
