(* Differential tests for the small-message coalescing fast path: rx
   burst aggregation with the GRO-style segment merge ([rx_coalesce]),
   the lifted ACK cadence ([ack_every]), burst-aware delayed ACK
   ([burst_ack]), and NAPI-style interrupt suppression ([int_suppress])
   are each checked against the interrupt-per-packet oracle.

   The strict differentials run on zero-cost hosts, where a whole rx
   batch is processed at a single simulated instant: there the merge
   and the suppression machinery must be wire-invisible — byte-identical
   payloads AND identical data/retransmission/ACK counts under
   drop/dup/reorder faults.  (On calibrated hosts coalescing is a real
   timing optimisation: ACKs leave a few hundred microseconds earlier
   or later, which re-times sender segmentation — so the end-to-end
   user-library checks assert payload integrity and that the machinery
   actually engaged, not segment-for-segment equality.) *)

open Tutil
module World = Uln_core.World
module Organization = Uln_core.Organization
module Sockets = Uln_core.Sockets
module Protolib = Uln_core.Protolib
module Scenario = Uln_workload.Scenario

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- wire observation --------------------------------------------------- *)

(* Decode every frame at serialization (the monitor hook runs before
   fault injection, so fault-made duplicates do not pollute the
   counts): first transmissions of data, retransmissions (a (ports,
   seq, len) key already sent), and pure ACKs. *)
type wire = {
  mutable data_segs : int;
  mutable rexmits : int;
  mutable acks : int;
}

let observe link =
  let wire = { data_segs = 0; rexmits = 0; acks = 0 } in
  let seen = Hashtbl.create 997 in
  Link.set_monitor link (fun _t fr ->
      if fr.Frame.ethertype = Frame.ethertype_ip then begin
        let v = Mbuf.flatten fr.Frame.payload in
        if View.length v >= 20 && View.get_uint8 v 9 = 6 then begin
          let ihl = (View.get_uint8 v 0 land 0xf) * 4 in
          let total = Stdlib.min (View.get_uint16 v 2) (View.length v) in
          if total >= ihl + 20 then begin
            let seg = View.sub v ihl (total - ihl) in
            let sport = View.get_uint16 seg 0 and dport = View.get_uint16 seg 2 in
            let seq = View.get_uint32 seg 4 in
            let doff = (View.get_uint8 seg 12 lsr 4) * 4 in
            let flags = View.get_uint8 seg 13 in
            let len = Stdlib.max 0 (View.length seg - doff) in
            if len > 0 || flags land 0x03 <> 0 (* SYN/FIN consume seq space *)
            then begin
              let key = (sport, dport, seq, len) in
              if Hashtbl.mem seen key then wire.rexmits <- wire.rexmits + 1
              else Hashtbl.add seen key ();
              if len > 0 then wire.data_segs <- wire.data_segs + 1
            end
            else if flags land 0x10 <> 0 then wire.acks <- wire.acks + 1
          end
        end
      end);
  wire

let mk_fault seed =
  Fault.create ~rng:(Rng.create ~seed) ~drop:0.02 ~duplicate:0.02 ~reorder:0.05 ()

(* --- engine-level harness: zero-cost hosts, batched rx ------------------ *)

(* A node whose rx thread lingers briefly and then hands the
   accumulated frames to the stack as one bracketed burst — the
   library's drain loop in miniature.  Both configurations run this
   same loop (the bracket is a no-op with [rx_coalesce] off); with
   [Costs.zero] the whole batch is processed at one instant, so any
   wire difference is the merge's doing, not timing's. *)
let make_batch_node sched link ~name ~mac_seed ~ip ~tcp_params =
  let machine =
    Machine.create sched ~name ~costs:Costs.zero ~rng:(Rng.create ~seed:(1000 + mac_seed))
  in
  let mac = Mac.of_int (0x5254000000 + mac_seed) in
  let nic = Lance.create machine link ~mac () in
  let env =
    Proto_env.of_machine ~timer_granularity:tcp_params.Tcp_params.timer_granularity machine
  in
  let stack =
    Stack.create env
      ~netif:{ Stack.mtu = nic.Nic.mtu; mac; tx = nic.Nic.send }
      ~ip_addr:ip ~tcp_params ()
  in
  let rxq = Mailbox.create () in
  nic.Nic.install_rx (fun info -> Mailbox.send rxq info.Nic.frame);
  let rec rx_loop () =
    let first = Mailbox.recv rxq in
    Sched.sleep sched (Time.ms 5);
    Stack.begin_rx_burst stack;
    Stack.input stack first;
    let rec burst () =
      match Mailbox.try_recv rxq with
      | Some frame ->
          Stack.input stack frame;
          burst ()
      | None -> ()
    in
    burst ();
    Stack.end_rx_burst stack;
    rx_loop ()
  in
  Sched.spawn sched ~name:(name ^ ".rx") rx_loop;
  (stack, ip)

(* One small-write bulk transfer alpha->beta over batched-rx nodes;
   returns the delivered bytes, the wire counts, and the receiver
   engine's merge counters.  Deterministic given the fault seed. *)
let etransfer ?fault ~params n =
  let sched = Sched.create () in
  let link = Link.ethernet sched in
  (match fault with Some f -> Link.set_fault link f | None -> ());
  let wire = observe link in
  let a_stack, _ =
    make_batch_node sched link ~name:"alpha" ~mac_seed:1 ~ip:(Ip.of_string "10.0.0.1")
      ~tcp_params:params
  in
  let b_stack, b_ip =
    make_batch_node sched link ~name:"beta" ~mac_seed:2 ~ip:(Ip.of_string "10.0.0.2")
      ~tcp_params:params
  in
  let data = pattern n in
  let received = ref "" in
  Sched.spawn sched ~name:"server" (fun () ->
      let l = Tcp.listen b_stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      received := read_all conn;
      Tcp.close conn);
  Sched.block_on sched (fun () ->
      match Tcp.connect a_stack.Stack.tcp ~src_port:5000 ~dst:b_ip ~dst_port:80 with
      | Error e -> failwith e
      | Ok (c, _) ->
          let off = ref 0 in
          while !off < n do
            let len = Stdlib.min 512 (n - !off) in
            Tcp.write c (View.of_string (String.sub data !off len));
            off := !off + len
          done;
          Tcp.close c;
          Tcp.await_closed c);
  let b = b_stack.Stack.tcp in
  (!received, data, wire, Tcp.gro_merged b, Tcp.gro_flushes b, Tcp.acks_elided b)

(* --- user-library harness: calibrated hosts end to end ------------------ *)

(* One small-write bulk transfer source->sink through the full
   user-library organization; the sink's receive-path statistics are
   sampled after the payload has drained but before close detaches the
   connection. *)
let utransfer ?fault ?costs ?(size = 512) ~params n =
  let w =
    World.create ?costs ~tcp_params:params ~network:World.Ethernet
      ~org:Organization.User_library ()
  in
  (match fault with Some f -> Link.set_fault (World.link w) f | None -> ());
  let wire = observe (World.link w) in
  let sched = World.sched w in
  let sink_lib =
    match World.library w ~host:1 "sink" with Some l -> l | None -> assert false
  in
  let source =
    match World.library w ~host:0 "source" with
    | Some l -> Protolib.app l
    | None -> assert false
  in
  let sink = Protolib.app sink_lib in
  let received = Buffer.create n in
  let stats = ref None in
  Sched.spawn sched ~name:"sink" (fun () ->
      let l = sink.Sockets.listen ~port:4000 in
      let conn = l.Sockets.accept () in
      let rec drain () =
        match conn.Sockets.recv ~max:65536 with
        | None -> ()
        | Some v ->
            Buffer.add_string received (View.to_string v);
            drain ()
      in
      drain ();
      stats := Some (Protolib.rxstats sink_lib);
      conn.Sockets.close ());
  let data = pattern n in
  Sched.block_on sched (fun () ->
      match source.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:4000 with
      | Error e -> failwith ("coalesce connect: " ^ e)
      | Ok conn ->
          let off = ref 0 in
          while !off < n do
            let len = Stdlib.min size (n - !off) in
            conn.Sockets.send (View.of_string (String.sub data !off len));
            off := !off + len
          done;
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  (Buffer.contents received, data, wire, Option.get !stats)

(* --- ack_every: the lifted cadence constant ----------------------------- *)

let prop_ack_every_differential =
  (* The lift of the hard-coded "ACK every other segment" constant:
     every cadence still delivers the bytes under faults, and a lazier
     cadence thins the pure-ACK stream on a clean link. *)
  QCheck.Test.make ~name:"ack_every: delivery intact at any cadence, lazier = fewer ACKs"
    ~count:5
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let delivered k =
        let params = { Tcp_params.fast with Tcp_params.ack_every = k } in
        let got, want, _, _ = utransfer ~fault:(mk_fault seed) ~params 24_000 in
        String.equal got want
      in
      let acks_of k =
        let params = { Tcp_params.fast with Tcp_params.ack_every = k } in
        let got, want, w, _ = utransfer ~params 24_000 in
        if not (String.equal got want) then max_int else w.acks
      in
      List.for_all delivered [ 1; 2; 4; 8 ]
      && acks_of 8 < acks_of 1)

let test_ack_every_default_unchanged () =
  (* ack_every = 2 is the seed behaviour: spelling it explicitly must
     be wire-identical to the preset it was lifted from. *)
  let got_e, want, w_e, _ =
    utransfer ~fault:(mk_fault 7) ~params:{ Tcp_params.fast with Tcp_params.ack_every = 2 }
      24_000
  in
  let got_d, _, w_d, _ = utransfer ~fault:(mk_fault 7) ~params:Tcp_params.fast 24_000 in
  check_str "explicit cadence delivers" want got_e;
  check_str "default cadence delivers" want got_d;
  check "identical data segments" w_d.data_segs w_e.data_segs;
  check "identical retransmissions" w_d.rexmits w_e.rexmits;
  check "identical pure ACKs" w_d.acks w_e.acks

(* --- rx_coalesce: burst drain + GRO merge ------------------------------- *)

let rx_on = { Tcp_params.fast with Tcp_params.rx_coalesce = true }

let prop_rx_coalesce_differential =
  (* With [burst_ack] off the merge is capped at the ACK cadence, so on
     zero-cost hosts the whole wire behaviour — data segments,
     retransmissions, and the pure-ACK stream — must be identical to
     the per-packet oracle under loss, duplication and reordering. *)
  QCheck.Test.make ~name:"rx coalesce = per-packet oracle under loss/dup/reorder" ~count:8
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let got_on, want, w_on, merged_on, _, elided_on =
        etransfer ~fault:(mk_fault seed) ~params:rx_on 24_000
      in
      let got_off, _, w_off, merged_off, flushes_off, _ =
        etransfer ~fault:(mk_fault seed) ~params:Tcp_params.fast 24_000
      in
      String.equal got_on want && String.equal got_off want
      && w_on.data_segs = w_off.data_segs
      && w_on.rexmits = w_off.rexmits
      && w_on.acks = w_off.acks
      && merged_on > 0 && elided_on = 0
      && merged_off = 0 && flushes_off = 0)

let test_gro_taken_end_to_end () =
  (* Through the full library on calibrated hosts: delivery intact and
     the merge engaged, without eliding any ACKs. *)
  let got, want, _, rs = utransfer ~params:rx_on 60_000 in
  check_str "delivery intact" want got;
  check_bool "segments were merged" true (rs.Protolib.rs_gro_merged > 0);
  check_bool "merged runs reached the input machine" true (rs.Protolib.rs_gro_flushes > 0);
  check "no ACKs elided without burst_ack" 0 rs.Protolib.rs_acks_elided

(* --- burst_ack: one ACK per rx burst ------------------------------------ *)

let burst_on = { Tcp_params.fast with Tcp_params.rx_coalesce = true; burst_ack = true }

let prop_burst_ack_differential =
  (* Eliding ACKs is visible by design (the sender paces on fewer
     ACKs), and once the streams diverge the same fault model lands on
     different frames — so under faults the differential claims
     byte-identical payloads and boundedness, not frame-for-frame
     dominance; the strict thinning claim is the clean-link test
     below. *)
  QCheck.Test.make ~name:"burst ACK: delivery intact, no ACK or retransmit blowup" ~count:8
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let got_on, want, w_on, merged_on, _, _ =
        etransfer ~fault:(mk_fault seed) ~params:burst_on 24_000
      in
      let got_off, _, w_off, _, _, _ =
        etransfer ~fault:(mk_fault seed) ~params:Tcp_params.fast 24_000
      in
      String.equal got_on want && String.equal got_off want
      && merged_on > 0
      && w_on.acks <= w_off.acks + 6
      && w_on.rexmits <= w_off.rexmits + 6)

let test_burst_ack_elides_clean_link () =
  (* Deterministic thinning claim (fault-free bursts are big enough for
     an ACK to span more than one cadence period): strictly fewer pure
     ACKs than the oracle, accounted by the elision counter. *)
  let got_on, want, w_on, _, _, elided = etransfer ~params:burst_on 24_000 in
  let got_off, _, w_off, _, _, _ = etransfer ~params:Tcp_params.fast 24_000 in
  check_str "burst-ack delivery intact" want got_on;
  check_str "oracle delivery intact" want got_off;
  check_bool "ACKs were elided" true (elided > 0);
  check_bool "strictly fewer pure ACKs" true (w_on.acks < w_off.acks)

let test_burst_ack_elides_end_to_end () =
  let got, want, _, rs = utransfer ~params:burst_on 60_000 in
  check_str "delivery intact" want got;
  check_bool "ACKs were elided" true (rs.Protolib.rs_acks_elided > 0)



(* --- int_suppress: NAPI-style interrupt suppression --------------------- *)

let napi_on = { Tcp_params.fast with Tcp_params.int_suppress = true }

let prop_int_suppress_differential =
  (* Interrupt suppression only re-times notification work; on
     zero-cost hosts even that vanishes, so the protocol must be
     oblivious: byte-identical delivery and identical wire behaviour
     under faults, with the poll loop actually used. *)
  QCheck.Test.make ~name:"int suppress = interrupt-per-packet oracle under faults" ~count:6
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let got_on, want, w_on, rs_on =
        utransfer ~fault:(mk_fault seed) ~costs:Costs.zero ~params:napi_on 24_000
      in
      let got_off, _, w_off, rs_off =
        utransfer ~fault:(mk_fault seed) ~costs:Costs.zero ~params:Tcp_params.fast 24_000
      in
      String.equal got_on want && String.equal got_off want
      && w_on.data_segs = w_off.data_segs
      && w_on.rexmits = w_off.rexmits
      && w_on.acks = w_off.acks
      && rs_on.Protolib.rs_polls > 0
      && rs_on.Protolib.rs_ring_drops = 0
      && rs_off.Protolib.rs_polls = 0)

(* --- incast: bounded drops, no livelock --------------------------------- *)

let test_incast_no_livelock () =
  (* Offered load at 4x the measured saturation of an 8-way incast: the
     protocol threads must keep completing requests (no receive
     livelock), the accounting must close, and the early-drop ring must
     shed load finitely rather than wedge. *)
  let conf = Scenario.incast ~requests:48 () in
  let sat = Scenario.saturation ~tcp_params:Tcp_params.coalesced conf in
  check_bool "saturation measured" true (sat > 0.);
  let r =
    Scenario.measure ~tcp_params:Tcp_params.coalesced
      { conf with Scenario.rate = 4. *. sat }
  in
  check_bool "progress at 4x overload" true (r.Scenario.completed > 0);
  check "accounting closes" conf.Scenario.requests (r.Scenario.completed + r.Scenario.expired);
  check_bool "delivered load does not collapse" true (r.Scenario.delivered_rps >= 0.5 *. sat);
  (* Every drop is an early drop at the bounded ring, at most one per
     offered frame — sanity, not a livelock proof. *)
  check_bool "drops bounded" true
    (r.Scenario.ring_drops < conf.Scenario.requests * conf.Scenario.servers * 64)

let test_incast_coalescing_helps () =
  (* The direction of the acceptance criterion (the >= 2x bar itself is
     measured by the bench): coalescing must not lower incast
     saturation. *)
  let conf = Scenario.incast ~requests:32 () in
  let sat_coal = Scenario.saturation ~tcp_params:Tcp_params.coalesced conf in
  let sat_pp = Scenario.saturation ~tcp_params:Tcp_params.fast conf in
  check_bool "coalesced saturation at least per-packet" true (sat_coal >= sat_pp)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "coalesce"
    [ ( "ack-every",
        [ qc prop_ack_every_differential;
          Alcotest.test_case "default cadence unchanged by the lift" `Quick
            test_ack_every_default_unchanged ] );
      ( "rx-coalesce",
        [ qc prop_rx_coalesce_differential;
          Alcotest.test_case "merge engaged end to end" `Quick test_gro_taken_end_to_end ] );
      ( "burst-ack",
        [ qc prop_burst_ack_differential;
          Alcotest.test_case "ACKs elided on a clean link" `Quick
            test_burst_ack_elides_clean_link;
          Alcotest.test_case "ACKs elided end to end" `Quick test_burst_ack_elides_end_to_end ]
      );
      ( "int-suppress", [ qc prop_int_suppress_differential ] );
      ( "incast",
        [ Alcotest.test_case "no livelock at 4x overload" `Quick test_incast_no_livelock;
          Alcotest.test_case "coalescing does not hurt saturation" `Quick
            test_incast_coalescing_helps ] ) ]
