(* Standalone validator executable — no public interface.  (The
   explicit empty interface also keeps dune's builtin @check alias
   working: the implicitly generated one for a (modules ...)-scoped
   executable breaks its .cmi lookup.) *)
