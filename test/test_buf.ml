module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Pool = Uln_buf.Pool
module Ring = Uln_buf.Ring
module Bytequeue = Uln_buf.Bytequeue

let check = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* --- view ---------------------------------------------------------- *)

let test_view_accessors () =
  let v = View.create 8 in
  View.set_uint8 v 0 0xAB;
  View.set_uint16 v 2 0x1234;
  View.set_uint32 v 4 0xDEADBEEFl;
  check "u8" 0xAB (View.get_uint8 v 0);
  check "u16" 0x1234 (View.get_uint16 v 2);
  Alcotest.(check int32) "u32" 0xDEADBEEFl (View.get_uint32 v 4)

let test_view_big_endian () =
  let v = View.create 4 in
  View.set_uint16 v 0 0x0102;
  check "hi byte first" 1 (View.get_uint8 v 0);
  check "lo byte second" 2 (View.get_uint8 v 1)

let test_view_sub_shares () =
  let v = View.of_string "hello world" in
  let s = View.sub v 6 5 in
  check_s "window" "world" (View.to_string s);
  View.set_uint8 s 0 (Char.code 'W');
  check_s "aliased" "hello World" (View.to_string v)

let test_view_bounds () =
  let v = View.create 4 in
  let expect_bounds f = try f (); false with View.Bounds _ -> true in
  check_bool "sub" true (expect_bounds (fun () -> ignore (View.sub v 2 3)));
  check_bool "get" true (expect_bounds (fun () -> ignore (View.get_uint16 v 3)));
  check_bool "negative" true (expect_bounds (fun () -> ignore (View.sub v (-1) 2)))

let test_view_concat () =
  let v = View.concat [ View.of_string "ab"; View.of_string "cd"; View.of_string "e" ] in
  check_s "concat" "abcde" (View.to_string v)

let test_view_copy_detaches () =
  let v = View.of_string "abc" in
  let c = View.copy v in
  View.set_uint8 v 0 (Char.code 'z');
  check_s "copy unaffected" "abc" (View.to_string c)

(* --- mbuf ------------------------------------------------------------ *)

let test_mbuf_prepend_drop () =
  let payload = Mbuf.of_string "payload" in
  let hdr = View.of_string "HDR:" in
  let pkt = Mbuf.prepend hdr payload in
  check "len" 11 (Mbuf.length pkt);
  check "segs" 2 (Mbuf.segment_count pkt);
  check_s "strip header" "payload" (Mbuf.to_string (Mbuf.drop pkt 4));
  check_s "original intact" "HDR:payload" (Mbuf.to_string pkt)

let test_mbuf_split_boundaries () =
  let pkt = Mbuf.concat (Mbuf.of_string "abc") (Mbuf.of_string "defgh") in
  let l, r = Mbuf.split pkt 3 in
  check_s "left" "abc" (Mbuf.to_string l);
  check_s "right" "defgh" (Mbuf.to_string r);
  let l2, r2 = Mbuf.split pkt 5 in
  check_s "left mid-segment" "abcde" (Mbuf.to_string l2);
  check_s "right mid-segment" "fgh" (Mbuf.to_string r2)

let test_mbuf_get_uint8_across () =
  let pkt = Mbuf.concat (Mbuf.of_string "ab") (Mbuf.of_string "cd") in
  check "cross-segment byte" (Char.code 'c') (Mbuf.get_uint8 pkt 2)

let test_mbuf_flatten_no_copy_single () =
  let v = View.of_string "xyz" in
  let pkt = Mbuf.of_view v in
  check_bool "same storage" true (Mbuf.flatten pkt == v)

let prop_mbuf_split_rejoin =
  QCheck.Test.make ~name:"mbuf split+concat is identity" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 200)) small_int)
    (fun (s, k) ->
      let pkt = Mbuf.of_string s in
      let n = if String.length s = 0 then 0 else k mod (String.length s + 1) in
      let l, r = Mbuf.split pkt n in
      Mbuf.to_string (Mbuf.concat l r) = s)

let prop_mbuf_drop_take =
  QCheck.Test.make ~name:"drop n . take m consistent with string ops" ~count:200
    QCheck.(triple (string_of_size Gen.(1 -- 100)) small_int small_int)
    (fun (s, a, b) ->
      let len = String.length s in
      let n = a mod (len + 1) in
      let m = b mod (len - n + 1) in
      let got = Mbuf.to_string (Mbuf.take (Mbuf.drop (Mbuf.of_string s) n) m) in
      got = String.sub s n m)

(* --- pool --------------------------------------------------------------- *)

let test_pool_exhaustion () =
  let p = Pool.create ~count:2 ~size:64 in
  let a = Option.get (Pool.alloc p) in
  let _b = Option.get (Pool.alloc p) in
  check_bool "exhausted" true (Pool.alloc p = None);
  Pool.free p a;
  check "one free" 1 (Pool.available p)

let test_pool_double_free_rejected () =
  let p = Pool.create ~count:1 ~size:8 in
  let a = Option.get (Pool.alloc p) in
  Pool.free p a;
  Alcotest.check_raises "double free" (Invalid_argument "Pool.free: double free") (fun () ->
      Pool.free p a)

let test_pool_foreign_view_rejected () =
  let p = Pool.create ~count:1 ~size:8 in
  Alcotest.check_raises "foreign" (Invalid_argument "Pool.free: view does not belong to this pool")
    (fun () -> Pool.free p (View.create 8))

(* --- ring ------------------------------------------------------------------ *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:4 in
  List.iter (fun i -> ignore (Ring.push r i)) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ring.pop r);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ring.pop r);
  ignore (Ring.push r 4);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Ring.pop r);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Ring.pop r);
  Alcotest.(check (option int)) "empty" None (Ring.pop r)

let test_ring_overflow_drops () =
  let r = Ring.create ~capacity:2 in
  check_bool "1" true (Ring.push r 1);
  check_bool "2" true (Ring.push r 2);
  check_bool "3 rejected" false (Ring.push r 3);
  check "drop count" 1 (Ring.drops r)

let prop_ring_wraparound =
  QCheck.Test.make ~name:"ring behaves as bounded queue" ~count:100
    QCheck.(list (option small_int))
    (fun ops ->
      (* Some n = push n; None = pop.  Compare against a reference queue
         bounded at 3. *)
      let r = Ring.create ~capacity:3 in
      let q = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              let pushed = Ring.push r v in
              let expect = Queue.length q < 3 in
              if expect then Queue.push v q;
              pushed = expect
          | None -> Ring.pop r = Queue.take_opt q)
        ops)

(* --- bytequeue --------------------------------------------------------------- *)

let test_bytequeue_fifo () =
  let q = Bytequeue.create () in
  Bytequeue.push_string q "hello ";
  Bytequeue.push_string q "world";
  check "len" 11 (Bytequeue.length q);
  check_s "pop" "hello" (View.to_string (Bytequeue.pop q 5));
  check_s "peek at offset" "wor" (View.to_string (Bytequeue.peek q ~off:1 ~len:3));
  Bytequeue.drop q 1;
  check_s "rest" "world" (View.to_string (Bytequeue.pop q 100))

let test_bytequeue_growth () =
  let q = Bytequeue.create ~capacity:4 () in
  let s = String.make 10_000 'x' in
  Bytequeue.push_string q s;
  check "grew" 10_000 (Bytequeue.length q);
  check_s "contents" s (View.to_string (Bytequeue.pop q 10_000))

let prop_bytequeue_matches_string =
  QCheck.Test.make ~name:"bytequeue = string concatenation" ~count:200
    QCheck.(list (string_of_size Gen.(0 -- 50)))
    (fun chunks ->
      let q = Bytequeue.create ~capacity:8 () in
      List.iter (Bytequeue.push_string q) chunks;
      let expect = String.concat "" chunks in
      View.to_string (Bytequeue.peek q ~off:0 ~len:(Bytequeue.length q)) = expect)

let prop_bytequeue_interleaved =
  QCheck.Test.make ~name:"interleaved push/drop tracks reference" ~count:200
    QCheck.(list (pair (string_of_size Gen.(0 -- 20)) small_int))
    (fun ops ->
      let q = Bytequeue.create ~capacity:4 () in
      let reference = ref "" in
      List.for_all
        (fun (s, d) ->
          Bytequeue.push_string q s;
          reference := !reference ^ s;
          let n = if !reference = "" then 0 else d mod (String.length !reference + 1) in
          Bytequeue.drop q n;
          reference := String.sub !reference n (String.length !reference - n);
          Bytequeue.length q = String.length !reference
          && View.to_string (Bytequeue.peek q ~off:0 ~len:(Bytequeue.length q)) = !reference)
        ops)

(* --- iovec --------------------------------------------------------- *)

module Iovec = Uln_buf.Iovec

let test_iovec_reference_semantics () =
  (* Pushed views are chained by reference: mutating the source after the
     push is visible through a peek — the whole point of the zero-copy
     send queue. *)
  let q = Iovec.create () in
  let v = View.of_string "abcdef" in
  Iovec.push q v;
  View.set_uint8 v 0 (Char.code 'X');
  check_s "no copy on push" "Xbcdef" (Mbuf.to_string (Iovec.peek q ~off:0 ~len:6))

let test_iovec_release_once () =
  let q = Iovec.create () in
  let fired = ref 0 in
  Iovec.push q ~release:(fun () -> incr fired) (View.of_string "0123456789");
  Iovec.push q ~release:(fun () -> incr fired) (View.of_string "ab");
  Iovec.drop q 4;
  check "partial consume holds the release" 0 !fired;
  Iovec.drop q 6;
  check "full consume fires exactly once" 1 !fired;
  check "second slot untouched" 2 (Iovec.length q);
  Iovec.clear q;
  check "clear fires the rest" 2 !fired

let test_iovec_zero_length_release () =
  let q = Iovec.create () in
  let fired = ref 0 in
  Iovec.push q ~release:(fun () -> incr fired) (View.create 0);
  check "empty view releases immediately" 1 !fired;
  check "nothing stored" 0 (Iovec.slot_count q)

let prop_iovec_matches_bytequeue =
  (* Differential against Bytequeue over a random push/peek/drop trace:
     same bytes, same lengths, and peek_sum's composed partial sum equals
     the checksum of the flattened range. *)
  QCheck.Test.make ~name:"iovec = bytequeue over random push/peek/drop traces" ~count:300
    QCheck.(1 -- 1_000_000)
    (fun seed ->
      let module Rng = Uln_engine.Rng in
      let module Checksum = Uln_proto.Checksum in
      let rng = Rng.create ~seed in
      let iq = Iovec.create () and bq = Bytequeue.create () in
      let ok = ref true in
      for _ = 1 to 60 do
        match Rng.int rng 3 with
        | 0 ->
            let len = Rng.int rng 97 in
            let v = View.create len in
            for i = 0 to len - 1 do
              View.set_uint8 v i (Rng.int rng 256)
            done;
            Iovec.push iq v;
            Bytequeue.push bq v
        | 1 ->
            let avail = Iovec.length iq in
            let off = Rng.int rng (avail + 1) in
            let len = Rng.int rng (avail - off + 1) in
            let m, sum = Iovec.peek_sum iq ~off ~len in
            let want = Bytequeue.peek bq ~off ~len in
            if
              (not (String.equal (Mbuf.to_string m) (View.to_string want)))
              || Checksum.finish sum <> Checksum.reference_of_view want
            then ok := false
        | _ ->
            let n = Rng.int rng (1 + Iovec.length iq) in
            Iovec.drop iq n;
            Bytequeue.drop bq n
      done;
      !ok && Iovec.length iq = Bytequeue.length bq)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "buf"
    [ ( "view",
        [ Alcotest.test_case "accessors" `Quick test_view_accessors;
          Alcotest.test_case "big endian" `Quick test_view_big_endian;
          Alcotest.test_case "sub shares" `Quick test_view_sub_shares;
          Alcotest.test_case "bounds" `Quick test_view_bounds;
          Alcotest.test_case "concat" `Quick test_view_concat;
          Alcotest.test_case "copy detaches" `Quick test_view_copy_detaches ] );
      ( "mbuf",
        [ Alcotest.test_case "prepend/drop" `Quick test_mbuf_prepend_drop;
          Alcotest.test_case "split boundaries" `Quick test_mbuf_split_boundaries;
          Alcotest.test_case "cross-segment access" `Quick test_mbuf_get_uint8_across;
          Alcotest.test_case "flatten single" `Quick test_mbuf_flatten_no_copy_single;
          qc prop_mbuf_split_rejoin;
          qc prop_mbuf_drop_take ] );
      ( "pool",
        [ Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
          Alcotest.test_case "double free" `Quick test_pool_double_free_rejected;
          Alcotest.test_case "foreign view" `Quick test_pool_foreign_view_rejected ] );
      ( "ring",
        [ Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "overflow drops" `Quick test_ring_overflow_drops;
          qc prop_ring_wraparound ] );
      ( "bytequeue",
        [ Alcotest.test_case "fifo" `Quick test_bytequeue_fifo;
          Alcotest.test_case "growth" `Quick test_bytequeue_growth;
          qc prop_bytequeue_matches_string;
          qc prop_bytequeue_interleaved ] );
      ( "iovec",
        [ Alcotest.test_case "reference semantics" `Quick test_iovec_reference_semantics;
          Alcotest.test_case "release fires once" `Quick test_iovec_release_once;
          Alcotest.test_case "zero-length release" `Quick test_iovec_zero_length_release;
          qc prop_iovec_matches_bytequeue ] ) ]
