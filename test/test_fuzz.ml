(* Adversarial-input fuzzing: random garbage and random well-formed
   segments thrown at a live stack.  The engine must never raise, and an
   established connection must keep working unless a segment was a
   legitimate kill (an in-window RST on its exact four-tuple). *)

open Tutil
module Rng = Uln_engine.Rng
module Tcp_wire = Uln_proto.Tcp_wire
module Ipv4 = Uln_proto.Ipv4
module Checksum = Uln_proto.Checksum

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Wrap a transport payload in a valid IP header addressed to [w.b]. *)
let ip_wrap w ~proto payload =
  let hdr = View.create 20 in
  View.set_uint8 hdr 0 0x45;
  View.set_uint16 hdr 2 (20 + Mbuf.length payload);
  View.set_uint8 hdr 8 64;
  View.set_uint8 hdr 9 proto;
  View.set_uint32 hdr 12 (Ip.to_int32 w.a.ip);
  View.set_uint32 hdr 16 (Ip.to_int32 w.b.ip);
  View.set_uint16 hdr 10 (Checksum.of_view hdr);
  Frame.make ~src:w.a.nic.Nic.mac ~dst:w.b.nic.Nic.mac ~ethertype:Frame.ethertype_ip
    (Mbuf.prepend hdr payload)

let test_random_bytes_never_crash () =
  (* Pure garbage at every layer: random ethertypes and payload bytes. *)
  let w = make_world () in
  let rng = Rng.create ~seed:4242 in
  run_to_completion w (fun () ->
      for _ = 1 to 2_000 do
        let len = Rng.int rng 120 in
        let payload = View.create len in
        for i = 0 to len - 1 do
          View.set_uint8 payload i (Rng.int rng 256)
        done;
        let ethertype =
          match Rng.int rng 3 with 0 -> 0x0800 | 1 -> 0x0806 | _ -> Rng.int rng 0x10000
        in
        (* Also aim random payloads at the RRP protocol number. *)
        if Rng.bernoulli rng 0.2 then begin
          let p = View.create (Rng.int rng 40) in
          Stack.input w.b.stack (ip_wrap w ~proto:81 (Mbuf.of_view p))
        end;
        Stack.input w.b.stack
          (Frame.make ~src:w.a.nic.Nic.mac ~dst:w.b.nic.Nic.mac ~ethertype
             (Mbuf.of_view payload))
      done);
  (* Nothing to assert beyond survival; drops should be plentiful. *)
  check_bool "ip drops counted" true (Ipv4.drops w.b.stack.Stack.ip > 0)

let test_random_valid_segments_never_crash () =
  (* Well-formed (checksummed) TCP segments with random fields, fired at
     a host with a live listener and a live connection. *)
  let w = make_world () in
  let rng = Rng.create ~seed:77 in
  let received = ref "" in
  let data = pattern 30_000 in
  Sched.spawn w.sched ~name:"server" (fun () ->
      let l = Tcp.listen w.b.stack.Stack.tcp ~port:80 in
      let conn, _ = Tcp.accept l in
      received := read_all conn;
      Tcp.close conn);
  run_to_completion w (fun () ->
      let c =
        match Tcp.connect w.a.stack.Stack.tcp ~src_port:5000 ~dst:w.b.ip ~dst_port:80 with
        | Ok (c, _) -> c
        | Error e -> failwith e
      in
      (* Interleave fuzz segments with the transfer. *)
      Sched.spawn w.sched ~name:"fuzzer" (fun () ->
          for _ = 1 to 500 do
            let flags =
              { Tcp_wire.fin = Rng.bool rng;
                syn = Rng.bool rng;
                rst = false (* an exact-tuple RST is a legitimate kill *);
                psh = Rng.bool rng;
                ack = Rng.bool rng }
            in
            let on_tuple = Rng.bernoulli rng 0.3 in
            let seg =
              { Tcp_wire.src_port = (if on_tuple then 5000 else Rng.int rng 0x10000);
                dst_port = (if on_tuple then 80 else Rng.int rng 0x10000);
                seq = Rng.int rng 0x10000000;
                ack = Rng.int rng 0x10000000;
                flags;
                wnd = Rng.int rng 0x10000;
                opts =
                  (if Rng.bool rng then Tcp_wire.opts_mss (Rng.int rng 0x10000)
                   else Tcp_wire.no_opts);
                payload = Mbuf.of_string (String.make (Rng.int rng 64) 'f') }
            in
            Stack.input w.b.stack
              (ip_wrap w ~proto:6 (Tcp_wire.encode ~src_ip:w.a.ip ~dst_ip:w.b.ip seg));
            Sched.sleep w.sched (Time.us 500)
          done);
      Tcp.write c (View.of_string data);
      Tcp.close c;
      Tcp.await_closed c);
  check "transfer survived the fuzz" 30_000 (String.length !received);
  check_bool "content intact" true (String.equal data !received)

let test_truncated_headers_never_crash () =
  (* Valid IP header, transport payloads shorter than their headers. *)
  let w = make_world () in
  run_to_completion w (fun () ->
      List.iter
        (fun (proto, len) ->
          let payload = View.create len in
          Stack.input w.b.stack (ip_wrap w ~proto (Mbuf.of_view payload)))
        [ (6, 0); (6, 5); (6, 19); (17, 0); (17, 7); (1, 0); (1, 3); (81, 0); (81, 13); (99, 10) ];
      Sched.sleep w.sched (Time.ms 100))

let prop_fuzz_many_seeds =
  QCheck.Test.make ~name:"garbage frames never crash the stack (any seed)" ~count:25
    QCheck.(1 -- 100000)
    (fun seed ->
      let w = make_world () in
      let rng = Rng.create ~seed in
      run_to_completion w (fun () ->
          for _ = 1 to 200 do
            let len = Rng.int rng 80 in
            let payload = View.create len in
            for i = 0 to len - 1 do
              View.set_uint8 payload i (Rng.int rng 256)
            done;
            Stack.input w.b.stack
              (Frame.make ~src:w.a.nic.Nic.mac ~dst:w.b.nic.Nic.mac
                 ~ethertype:(if Rng.bool rng then 0x0800 else 0x0806)
                 (Mbuf.of_view payload))
          done);
      true)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuzz"
    [ ( "stack",
        [ Alcotest.test_case "random bytes" `Quick test_random_bytes_never_crash;
          Alcotest.test_case "random segments vs live transfer" `Quick
            test_random_valid_segments_never_crash;
          Alcotest.test_case "truncated headers" `Quick test_truncated_headers_never_crash;
          qc prop_fuzz_many_seeds ] ) ]
