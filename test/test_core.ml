(* Integration tests of the protocol organizations: the same workload
   runs unchanged under every structure, plus the protection properties
   specific to the user-library organization. *)

module Sched = Uln_engine.Sched
module Time = Uln_engine.Time
module View = Uln_buf.View
module Mbuf = Uln_buf.Mbuf
module Ip = Uln_addr.Ip
module Mac = Uln_addr.Mac
module Addr_space = Uln_host.Addr_space
module Capability = Uln_host.Capability
module Frame = Uln_net.Frame
module Template = Uln_filter.Template
module Program = Uln_filter.Program
module Tcp_state = Uln_proto.Tcp_state
module World = Uln_core.World
module Organization = Uln_core.Organization
module Sockets = Uln_core.Sockets
module Netio = Uln_core.Netio
module Registry = Uln_core.Registry

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pattern n = String.init n (fun i -> Char.chr (((i * 7) + (i / 251)) land 0x7f))

(* One bulk transfer: app on host 1 serves, app on host 0 sends [n]
   bytes; returns what the server received. *)
let run_transfer w n =
  let data = pattern n in
  let received = ref "" in
  let server_app = World.app w ~host:1 "server" in
  let client_app = World.app w ~host:0 "client" in
  Sched.spawn (World.sched w) ~name:"server" (fun () ->
      let l = server_app.Sockets.listen ~port:80 in
      let conn = l.Sockets.accept () in
      let buf = Buffer.create n in
      let rec drain () =
        match conn.Sockets.recv ~max:65536 with
        | None -> ()
        | Some v ->
            Buffer.add_string buf (View.to_string v);
            drain ()
      in
      drain ();
      received := Buffer.contents buf;
      conn.Sockets.close ());
  Sched.block_on (World.sched w) (fun () ->
      match client_app.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
      | Error e -> failwith ("connect: " ^ e)
      | Ok conn ->
          conn.Sockets.send (View.of_string data);
          conn.Sockets.close ();
          conn.Sockets.await_closed ());
  (data, !received)

let orgs_to_test =
  [ ("inkernel", Organization.In_kernel);
    ("server-mapped", Organization.Single_server `Mapped);
    ("server-message", Organization.Single_server `Message);
    ("dedicated", Organization.Dedicated_servers);
    ("userlib", Organization.User_library) ]

let transfer_case (label, org) network net_label =
  Alcotest.test_case (Printf.sprintf "%s over %s" label net_label) `Quick (fun () ->
      let w = World.create ~network ~org () in
      let data, received = run_transfer w 50_000 in
      check (label ^ " length") (String.length data) (String.length received);
      check_bool (label ^ " content") true (String.equal data received))

(* --- user-library organization specifics ------------------------------- *)

let userlib_world ?(network = World.Ethernet) () =
  World.create ~network ~org:Organization.User_library ()

let test_registry_off_data_path () =
  (* The registry completes exactly one handshake and is not involved
     per-segment: its stack must see only handshake-era segments. *)
  let w = userlib_world () in
  let _, received = run_transfer w 100_000 in
  check "transfer worked" 100_000 (String.length received);
  let reg = Option.get (World.registry w 0) in
  check "one handshake" 1 (Registry.handshakes_completed reg);
  let reg_stack = Registry.stack reg in
  let reg_segments = Uln_proto.Tcp.segments_in reg_stack.Uln_proto.Stack.tcp in
  (* ~69 data segments flowed; the registry saw only the SYN-ACK. *)
  check_bool "registry bypassed on data path" true (reg_segments < 5)

let test_userlib_demux_isolation_two_apps () =
  (* Two applications on the same host, two concurrent connections:
     each stream must arrive intact at its own application. *)
  let w = userlib_world () in
  let server1 = World.app w ~host:1 "srv1" in
  let server2 = World.app w ~host:1 "srv2" in
  let client1 = World.app w ~host:0 "cli1" in
  let client2 = World.app w ~host:0 "cli2" in
  let got1 = ref "" and got2 = ref "" in
  let serve app port dst =
    Sched.spawn (World.sched w) ~name:"srv" (fun () ->
        let l = app.Sockets.listen ~port in
        let c = l.Sockets.accept () in
        let buf = Buffer.create 1024 in
        let rec drain () =
          match c.Sockets.recv ~max:65536 with
          | None -> ()
          | Some v ->
              Buffer.add_string buf (View.to_string v);
              drain ()
        in
        drain ();
        dst := Buffer.contents buf;
        c.Sockets.close ())
  in
  serve server1 81 got1;
  serve server2 82 got2;
  let send_from app port tag =
    Sched.spawn (World.sched w) ~name:"cli" (fun () ->
        match app.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:port with
        | Error e -> failwith e
        | Ok c ->
            for i = 0 to 49 do
              c.Sockets.send (View.of_string (Printf.sprintf "%s-%03d|" tag i))
            done;
            c.Sockets.close ())
  in
  send_from client1 81 "one";
  send_from client2 82 "two";
  Sched.run (World.sched w);
  check "stream one complete" (50 * 8) (String.length !got1);
  check "stream two complete" (50 * 8) (String.length !got2);
  check_bool "stream one untainted" true (String.sub !got1 0 4 = "one-");
  check_bool "stream two untainted" true (String.sub !got2 0 4 = "two-");
  let netio1 = Option.get (World.netio w 1) in
  check "no cross-delivery rejects" 0 (Netio.sends_rejected netio1)

let test_channel_creation_requires_privilege () =
  let w = userlib_world () in
  let netio = Option.get (World.netio w 0) in
  let intruder = Uln_host.Machine.new_user_domain (World.machine w 0) "intruder" in
  Sched.block_on (World.sched w) (fun () ->
      check_bool "unprivileged create rejected" true
        (try
           ignore (Netio.create_channel netio ~caller:intruder ~owner:intruder ~use_bqi:false);
           false
         with Capability.Violation _ -> true))

let test_template_blocks_forged_send () =
  (* A (privileged, for setup) channel constrained to one connection;
     sending a packet with different ports through it must be refused
     by the template check. *)
  let w = userlib_world () in
  let netio = Option.get (World.netio w 0) in
  let reg = Option.get (World.registry w 0) in
  let dom = Registry.domain reg in
  Sched.block_on (World.sched w) (fun () ->
      let ch = Netio.create_channel netio ~caller:dom ~owner:dom ~use_bqi:false in
      let src_ip = World.host_ip w 0 and dst_ip = World.host_ip w 1 in
      Netio.activate netio ~caller:dom ch
        ~filter:(Program.tcp_conn ~src_ip:dst_ip ~dst_ip:src_ip ~src_port:99 ~dst_port:42)
        ~template:(Template.tcp_conn ~src_ip ~dst_ip ~src_port:42 ~dst_port:99 ());
      (* Forge a segment from port 5555 (impersonating another conn). *)
      let seg =
        Uln_proto.Tcp_wire.encode ~src_ip ~dst_ip
          { Uln_proto.Tcp_wire.src_port = 5555;
            dst_port = 99;
            seq = 0;
            ack = 0;
            flags = Uln_proto.Tcp_wire.no_flags;
            wnd = 0;
            opts = Uln_proto.Tcp_wire.no_opts;
            payload = Mbuf.empty }
      in
      let ip_hdr = View.create 20 in
      View.set_uint8 ip_hdr 0 0x45;
      View.set_uint16 ip_hdr 2 (20 + Mbuf.length seg);
      View.set_uint8 ip_hdr 8 64;
      View.set_uint8 ip_hdr 9 6;
      View.set_uint32 ip_hdr 12 (Ip.to_int32 src_ip);
      View.set_uint32 ip_hdr 16 (Ip.to_int32 dst_ip);
      View.set_uint16 ip_hdr 10 (Uln_proto.Checksum.of_view ip_hdr);
      let frame =
        Frame.make
          ~src:(World.nic w 0).Uln_net.Nic.mac
          ~dst:(World.nic w 1).Uln_net.Nic.mac
          ~ethertype:Frame.ethertype_ip
          (Mbuf.prepend ip_hdr seg)
      in
      check_bool "forged send rejected" true
        (try
           Netio.send netio ch ~from_domain:dom frame;
           false
         with Netio.Send_rejected _ -> true);
      check "reject counted" 1 (Netio.sends_rejected netio))

let test_rx_pop_requires_mapping () =
  let w = userlib_world () in
  let netio = Option.get (World.netio w 0) in
  let reg = Option.get (World.registry w 0) in
  let dom = Registry.domain reg in
  let other = Uln_host.Machine.new_user_domain (World.machine w 0) "other" in
  Sched.block_on (World.sched w) (fun () ->
      let ch = Netio.create_channel netio ~caller:dom ~owner:dom ~use_bqi:false in
      check_bool "foreign rx_pop rejected" true
        (try
           ignore (Netio.rx_pop ch ~from_domain:other);
           false
         with Capability.Violation _ -> true))

let test_graceful_exit_inherits_connection () =
  (* Client app exits with the connection still ESTABLISHED; the
     registry inherits it and closes it properly, so the server sees a
     clean EOF, not a reset. *)
  let w = userlib_world () in
  let server_app = World.app w ~host:1 "server" in
  let client_app = World.app w ~host:0 "client" in
  let outcome = ref `Pending in
  Sched.spawn (World.sched w) ~name:"server" (fun () ->
      let l = server_app.Sockets.listen ~port:80 in
      let c = l.Sockets.accept () in
      (try
         let rec drain () =
           match c.Sockets.recv ~max:4096 with Some _ -> drain () | None -> outcome := `Eof
         in
         drain ()
       with Uln_proto.Tcp.Connection_error _ -> outcome := `Reset);
      c.Sockets.close ());
  Sched.block_on (World.sched w) (fun () ->
      match client_app.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
      | Error e -> failwith e
      | Ok conn ->
          conn.Sockets.send (View.of_string "some data then vanish");
          Sched.sleep (World.sched w) (Time.ms 200);
          client_app.Sockets.exit_app ~graceful:true);
  Sched.run (World.sched w);
  check_bool "server saw clean EOF" true (!outcome = `Eof);
  let reg = Option.get (World.registry w 0) in
  check "registry inherited it" 1 (Registry.inherited_connections reg)

let test_abnormal_exit_resets_peer () =
  let w = userlib_world () in
  let server_app = World.app w ~host:1 "server" in
  let client_app = World.app w ~host:0 "client" in
  let outcome = ref `Pending in
  Sched.spawn (World.sched w) ~name:"server" (fun () ->
      let l = server_app.Sockets.listen ~port:80 in
      let c = l.Sockets.accept () in
      try
        let rec drain () =
          match c.Sockets.recv ~max:4096 with Some _ -> drain () | None -> outcome := `Eof
        in
        drain ()
      with Uln_proto.Tcp.Connection_error _ -> outcome := `Reset);
  Sched.block_on (World.sched w) (fun () ->
      match client_app.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
      | Error e -> failwith e
      | Ok conn ->
          conn.Sockets.send (View.of_string "about to crash");
          Sched.sleep (World.sched w) (Time.ms 200);
          client_app.Sockets.exit_app ~graceful:false);
  Sched.run (World.sched w);
  check_bool "server saw reset" true (!outcome = `Reset)

let test_ports_released_after_close () =
  let w = userlib_world () in
  let reg0 = Option.get (World.registry w 0) in
  let _, received = run_transfer w 5_000 in
  check "transferred" 5_000 (String.length received);
  (* After TIME_WAIT expires the library releases the port. *)
  check "client ports free" 0 (Registry.ports_in_use reg0)

let test_an1_uses_hardware_demux () =
  let w = userlib_world ~network:World.An1 () in
  let _, received = run_transfer w 50_000 in
  check "transfer over AN1" 50_000 (String.length received);
  let netio1 = Option.get (World.netio w 1) in
  check_bool "BQI path used for data" true (Netio.hw_demuxed netio1 > 20);
  check_bool "software path only for setup-era traffic" true
    (Netio.sw_demuxed netio1 < Netio.hw_demuxed netio1)

let test_ethernet_uses_software_demux () =
  let w = userlib_world ~network:World.Ethernet () in
  let _, _ = run_transfer w 20_000 in
  let netio1 = Option.get (World.netio w 1) in
  check "no hardware path on LANCE" 0 (Netio.hw_demuxed netio1);
  check_bool "software path used" true (Netio.sw_demuxed netio1 > 10)

let test_compiled_demux_mode_works () =
  let w =
    World.create ~network:World.Ethernet ~org:Organization.User_library
      ~demux_mode:Uln_filter.Demux.Compiled ()
  in
  let data, received = run_transfer w 30_000 in
  check_bool "transfer with compiled filters" true (String.equal data received)

let test_organization_descriptions () =
  List.iter
    (fun org ->
      let s = Format.asprintf "%a" Organization.describe org in
      check_bool (Organization.name org ^ " described") true (String.length s > 40))
    Organization.all;
  let fig2 = Format.asprintf "%a" Organization.describe_userlib () in
  check_bool "figure 2" true (String.length fig2 > 200)

(* --- UDP across organizations (paper SS5: connectionless binding) ------ *)

let udp_roundtrip_case (label, org) =
  Alcotest.test_case (label ^ " udp roundtrip") `Quick (fun () ->
      let w = World.create ~network:World.Ethernet ~org () in
      let server = World.app w ~host:1 "udp-server" in
      let client = World.app w ~host:0 "udp-client" in
      let got = ref "" in
      Sched.spawn (World.sched w) ~name:"udp-server" (fun () ->
          let ep = server.Sockets.udp_bind ~port:53 in
          let src, src_port, data = ep.Sockets.recv_from () in
          got := View.to_string data;
          ep.Sockets.sendto ~dst:src ~dst_port:src_port (View.of_string "reply");
          ep.Sockets.udp_close ());
      let answer =
        Sched.block_on (World.sched w) (fun () ->
            let ep = client.Sockets.udp_bind ~port:5353 in
            ep.Sockets.sendto ~dst:(World.host_ip w 1) ~dst_port:53 (View.of_string "query");
            let _, _, data = ep.Sockets.recv_from () in
            ep.Sockets.udp_close ();
            View.to_string data)
      in
      Alcotest.(check string) "server got query" "query" !got;
      Alcotest.(check string) "client got reply" "reply" answer)

let test_udp_userlib_port_collision () =
  let w = userlib_world () in
  let a = World.app w ~host:0 "a" in
  let b = World.app w ~host:0 "b" in
  Sched.block_on (World.sched w) (fun () ->
      let ep = a.Sockets.udp_bind ~port:1000 in
      check_bool "second bind rejected" true
        (try
           ignore (b.Sockets.udp_bind ~port:1000);
           false
         with Failure _ -> true);
      ep.Sockets.udp_close ();
      (* After release the port is available again. *)
      let ep2 = b.Sockets.udp_bind ~port:1000 in
      ep2.Sockets.udp_close ())

let test_udp_userlib_bypasses_registry () =
  let w = userlib_world () in
  let server = World.app w ~host:1 "srv" in
  let client = World.app w ~host:0 "cli" in
  Sched.spawn (World.sched w) ~name:"srv" (fun () ->
      let ep = server.Sockets.udp_bind ~port:9 in
      for _ = 1 to 20 do
        let src, src_port, _ = ep.Sockets.recv_from () in
        ep.Sockets.sendto ~dst:src ~dst_port:src_port (View.of_string "pong")
      done;
      ep.Sockets.udp_close ());
  Sched.block_on (World.sched w) (fun () ->
      let ep = client.Sockets.udp_bind ~port:10 in
      for _ = 1 to 20 do
        ep.Sockets.sendto ~dst:(World.host_ip w 1) ~dst_port:9 (View.of_string "ping");
        ignore (ep.Sockets.recv_from ())
      done;
      ep.Sockets.udp_close ());
  (* The registry saw binding traffic only, none of the 40 datagrams. *)
  let reg = Option.get (World.registry w 1) in
  let reg_stack = Registry.stack reg in
  check "no datagrams at registry" 0
    (Uln_proto.Udp.datagrams_in reg_stack.Uln_proto.Stack.udp)

(* --- connection passing (inetd pattern, paper SS3.2) ------------------- *)

let test_pass_connection_between_apps () =
  let w = userlib_world () in
  let inetd = Option.get (World.library w ~host:1 "inetd") in
  let worker = Option.get (World.library w ~host:1 "worker") in
  let client = World.app w ~host:0 "client" in
  let reg1 = Option.get (World.registry w 1) in
  Sched.spawn (World.sched w) ~name:"inetd" (fun () ->
      let inetd_app = Uln_core.Protolib.app inetd in
      let l = inetd_app.Sockets.listen ~port:23 in
      let conn = l.Sockets.accept () in
      (* Hand the accepted connection to the worker application without
         touching the registry. *)
      let handshakes_before = Registry.handshakes_completed reg1 in
      let conn' = Uln_core.Protolib.pass_connection inetd conn ~to_lib:worker in
      check "no new registry work" handshakes_before (Registry.handshakes_completed reg1);
      check_bool "old handle unusable" true
        (try
           conn.Sockets.send (View.of_string "x");
           false
         with Uln_proto.Tcp.Connection_error _ -> true);
      (* The worker serves the session. *)
      (match conn'.Sockets.recv ~max:64 with
      | Some v -> conn'.Sockets.send (View.of_string ("worker echoes: " ^ View.to_string v))
      | None -> ());
      conn'.Sockets.close ());
  let reply =
    Sched.block_on (World.sched w) (fun () ->
        match client.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:23 with
        | Error e -> failwith e
        | Ok conn ->
            (* Give the handoff a moment before sending. *)
            Sched.sleep (World.sched w) (Time.ms 100);
            conn.Sockets.send (View.of_string "hello");
            let r = match conn.Sockets.recv ~max:128 with Some v -> View.to_string v | None -> "" in
            conn.Sockets.close ();
            conn.Sockets.await_closed ();
            r)
  in
  Alcotest.(check string) "stream survives the handoff" "worker echoes: hello" reply

let test_pass_connection_requires_ownership () =
  let w = userlib_world () in
  let lib_a = Option.get (World.library w ~host:0 "a") in
  let lib_b = Option.get (World.library w ~host:0 "b") in
  let server = World.app w ~host:1 "server" in
  Sched.spawn (World.sched w) ~name:"server" (fun () ->
      let l = server.Sockets.listen ~port:80 in
      let c = l.Sockets.accept () in
      (match c.Sockets.recv ~max:16 with _ -> ());
      c.Sockets.close ());
  Sched.block_on (World.sched w) (fun () ->
      let a_app = Uln_core.Protolib.app lib_a in
      match a_app.Sockets.connect ~src_port:0 ~dst:(World.host_ip w 1) ~dst_port:80 with
      | Error e -> failwith e
      | Ok conn ->
          check_bool "foreign library cannot pass it" true
            (try
               ignore (Uln_core.Protolib.pass_connection lib_b conn ~to_lib:lib_a);
               false
             with Failure _ -> true);
          conn.Sockets.close ())

let () =
  Alcotest.run "core"
    [ ( "transfer-ethernet",
        List.map (fun o -> transfer_case o World.Ethernet "ethernet") orgs_to_test );
      ( "transfer-an1",
        List.map (fun o -> transfer_case o World.An1 "an1") orgs_to_test );
      ( "userlib",
        [ Alcotest.test_case "registry off data path" `Quick test_registry_off_data_path;
          Alcotest.test_case "two-app isolation" `Quick test_userlib_demux_isolation_two_apps;
          Alcotest.test_case "ports released" `Quick test_ports_released_after_close;
          Alcotest.test_case "an1 hardware demux" `Quick test_an1_uses_hardware_demux;
          Alcotest.test_case "ethernet software demux" `Quick test_ethernet_uses_software_demux;
          Alcotest.test_case "compiled filters" `Quick test_compiled_demux_mode_works ] );
      ( "protection",
        [ Alcotest.test_case "privileged channel creation" `Quick
            test_channel_creation_requires_privilege;
          Alcotest.test_case "template blocks forging" `Quick test_template_blocks_forged_send;
          Alcotest.test_case "rx mapping required" `Quick test_rx_pop_requires_mapping ] );
      ( "inheritance",
        [ Alcotest.test_case "graceful exit" `Quick test_graceful_exit_inherits_connection;
          Alcotest.test_case "abnormal exit resets" `Quick test_abnormal_exit_resets_peer ] );
      ("udp", List.map udp_roundtrip_case orgs_to_test
              @ [ Alcotest.test_case "userlib port collision" `Quick
                    test_udp_userlib_port_collision;
                  Alcotest.test_case "userlib bypasses registry" `Quick
                    test_udp_userlib_bypasses_registry ]);
      ( "handoff",
        [ Alcotest.test_case "pass between apps" `Quick test_pass_connection_between_apps;
          Alcotest.test_case "requires ownership" `Quick test_pass_connection_requires_ownership ] );
      ( "figures",
        [ Alcotest.test_case "descriptions" `Quick test_organization_descriptions ] ) ]
