open Tutil
module Checksum = Uln_proto.Checksum
module Ipv4 = Uln_proto.Ipv4
module Arp = Uln_proto.Arp
module Tcp_wire = Uln_proto.Tcp_wire
module Tcp_seq = Uln_proto.Tcp_seq

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* --- checksum ------------------------------------------------------- *)

let test_checksum_known_vector () =
  (* RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, cksum 0x220d. *)
  let v = View.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check "rfc1071" 0x220d (Checksum.of_view v)

let test_checksum_odd_length () =
  let v = View.of_string "\x01\x02\x03" in
  (* words: 0102, 0300 -> sum 0402 -> cksum 0xfbfd *)
  check "odd" 0xfbfd (Checksum.of_view v)

let prop_checksum_detects_single_flip =
  QCheck.Test.make ~name:"checksum catches any single byte flip" ~count:300
    QCheck.(pair (string_of_size Gen.(2 -- 100)) (pair small_int small_int))
    (fun (s, (pos, flip)) ->
      let flip = 1 + (flip mod 255) in
      let pos = pos mod String.length s in
      let m = Mbuf.of_string s in
      let c1 = Checksum.of_mbuf m in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
      let c2 = Checksum.of_mbuf (Mbuf.of_view (View.of_bytes b)) in
      c1 <> c2)

let prop_checksum_segment_independent =
  QCheck.Test.make ~name:"checksum independent of mbuf segmentation" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 120)) small_int)
    (fun (s, cut) ->
      let cut = cut mod (String.length s + 1) in
      let whole = Checksum.of_mbuf (Mbuf.of_string s) in
      let split =
        Mbuf.concat
          (Mbuf.of_string (String.sub s 0 cut))
          (Mbuf.of_string (String.sub s cut (String.length s - cut)))
      in
      Checksum.of_mbuf split = whole)

let test_checksum_validates_self () =
  let s = "some packet payload with a checksum appended" in
  let c = Checksum.of_mbuf (Mbuf.of_string s) in
  let tail = View.create 2 in
  View.set_uint16 tail 0 c;
  (* Even-length payload: appending the checksum makes the total sum to
     zero. *)
  check_bool "self-validates" true
    (Checksum.valid (Mbuf.append (Mbuf.of_string s) tail) || String.length s mod 2 = 1)

(* --- tcp sequence arithmetic ------------------------------------------ *)

let test_seq_wraparound () =
  let near_max = 0xFFFFFFFF in
  check "wraps" 4 (Tcp_seq.add near_max 5);
  check_bool "lt across wrap" true (Tcp_seq.lt near_max 4);
  check_bool "gt across wrap" true (Tcp_seq.gt 4 near_max);
  check "diff across wrap" 5 (Tcp_seq.diff 4 near_max)

let prop_seq_diff_add =
  QCheck.Test.make ~name:"seq add/diff inverse" ~count:300
    QCheck.(pair (0 -- 0xFFFFFF) (0 -- 100000))
    (fun (base, n) -> Tcp_seq.diff (Tcp_seq.add base n) base = n)

let test_seq_in_window () =
  check_bool "inside" true (Tcp_seq.in_window 10 ~base:5 ~size:10);
  check_bool "at base" true (Tcp_seq.in_window 5 ~base:5 ~size:10);
  check_bool "past end" false (Tcp_seq.in_window 15 ~base:5 ~size:10);
  check_bool "before" false (Tcp_seq.in_window 4 ~base:5 ~size:10);
  check_bool "empty window" false (Tcp_seq.in_window 5 ~base:5 ~size:0);
  check_bool "wrapping window" true
    (Tcp_seq.in_window 2 ~base:0xFFFFFFF0 ~size:32)

(* --- tcp wire format ------------------------------------------------------ *)

let ip_a = Ip.of_string "10.0.0.1"
let ip_b = Ip.of_string "10.0.0.2"

let mk_seg ?(payload = "") ?(flags = Tcp_wire.no_flags) ?mss () =
  { Tcp_wire.src_port = 4321;
    dst_port = 80;
    seq = 1000;
    ack = 2000;
    flags;
    wnd = 8192;
    opts = (match mss with Some m -> Tcp_wire.opts_mss m | None -> Tcp_wire.no_opts);
    payload = Mbuf.of_string payload }

let test_wire_round_trip () =
  let seg = mk_seg ~payload:"hello tcp"
      ~flags:{ Tcp_wire.no_flags with Tcp_wire.ack = true; psh = true } () in
  let encoded = Tcp_wire.encode ~src_ip:ip_a ~dst_ip:ip_b seg in
  match Tcp_wire.decode ~src_ip:ip_a ~dst_ip:ip_b encoded with
  | None -> Alcotest.fail "decode failed"
  | Some got ->
      check "sport" 4321 got.Tcp_wire.src_port;
      check "dport" 80 got.Tcp_wire.dst_port;
      check "seq" 1000 got.Tcp_wire.seq;
      check "ack" 2000 got.Tcp_wire.ack;
      check "wnd" 8192 got.Tcp_wire.wnd;
      check_bool "flags" true got.Tcp_wire.flags.Tcp_wire.ack;
      check_s "payload" "hello tcp" (Mbuf.to_string got.Tcp_wire.payload)

let test_wire_mss_option () =
  let seg = mk_seg ~flags:{ Tcp_wire.no_flags with Tcp_wire.syn = true } ~mss:1460 () in
  let encoded = Tcp_wire.encode ~src_ip:ip_a ~dst_ip:ip_b seg in
  match Tcp_wire.decode ~src_ip:ip_a ~dst_ip:ip_b encoded with
  | None -> Alcotest.fail "decode failed"
  | Some got -> Alcotest.(check (option int)) "mss" (Some 1460) got.Tcp_wire.opts.Tcp_wire.mss

let test_wire_detects_corruption () =
  let seg = mk_seg ~payload:"payload bytes" () in
  let encoded = Tcp_wire.encode ~src_ip:ip_a ~dst_ip:ip_b seg in
  let flat = View.copy (Mbuf.flatten encoded) in
  View.set_uint8 flat 25 (View.get_uint8 flat 25 lxor 0x40);
  check_bool "corrupt rejected" true
    (Tcp_wire.decode ~src_ip:ip_a ~dst_ip:ip_b (Mbuf.of_view flat) = None)

let test_wire_wrong_pseudo_header () =
  (* The pseudo-header binds the segment to its IP addresses: decoding
     with different addresses must fail. *)
  let seg = mk_seg ~payload:"x" () in
  let encoded = Tcp_wire.encode ~src_ip:ip_a ~dst_ip:ip_b seg in
  check_bool "wrong src" true
    (Tcp_wire.decode ~src_ip:(Ip.of_string "10.0.0.9") ~dst_ip:ip_b encoded = None)

let prop_wire_round_trip =
  QCheck.Test.make ~name:"tcp wire round trip on random payloads" ~count:200
    QCheck.(string_of_size Gen.(0 -- 1460))
    (fun payload ->
      let seg = mk_seg ~payload () in
      match Tcp_wire.decode ~src_ip:ip_a ~dst_ip:ip_b (Tcp_wire.encode ~src_ip:ip_a ~dst_ip:ip_b seg) with
      | None -> false
      | Some got -> Mbuf.to_string got.Tcp_wire.payload = payload)

(* --- ARP over a real link --------------------------------------------------- *)

let test_arp_resolves_over_link () =
  let w = make_world () in
  let resolved = ref None in
  run_to_completion w (fun () ->
      Arp.resolve w.a.stack.Stack.arp w.b.ip (fun r -> resolved := r);
      (* Wait for the exchange. *)
      Sched.sleep w.sched (Time.ms 100));
  match !resolved with
  | Some mac -> check_bool "right mac" true (Mac.equal mac w.b.nic.Nic.mac)
  | None -> Alcotest.fail "ARP did not resolve"

let test_arp_cache_hit_is_immediate () =
  let w = make_world () in
  run_to_completion w (fun () ->
      Arp.resolve w.a.stack.Stack.arp w.b.ip (fun _ -> ());
      Sched.sleep w.sched (Time.ms 100);
      let immediate = ref false in
      Arp.resolve w.a.stack.Stack.arp w.b.ip (fun _ -> immediate := true);
      check_bool "cache hit synchronous" true !immediate)

let test_arp_gives_up_on_unknown_host () =
  let w = make_world () in
  let answer = ref (Some Mac.broadcast) in
  run_to_completion w (fun () ->
      Arp.resolve w.a.stack.Stack.arp (Ip.of_string "10.9.9.9") (fun r -> answer := r);
      Sched.sleep w.sched (Time.sec 10));
  check_bool "failed" true (!answer = None)

(* --- ICMP ping --------------------------------------------------------------- *)

let test_ping () =
  let w = make_world () in
  let rtt = ref None in
  run_to_completion w (fun () ->
      Icmp.ping w.a.stack.Stack.icmp ~dst:w.b.ip (fun r -> rtt := r);
      Sched.sleep w.sched (Time.sec 1));
  match !rtt with
  | Some span -> check_bool "positive rtt" true (span > 0)
  | None -> Alcotest.fail "ping timed out"

let test_ping_unknown_host_times_out () =
  let w = make_world () in
  let outcome = ref (Some 1) in
  run_to_completion w (fun () ->
      Icmp.ping w.a.stack.Stack.icmp ~dst:(Ip.of_string "10.9.9.9") (fun r ->
          outcome := Option.map (fun _ -> 1) r);
      Sched.sleep w.sched (Time.sec 12));
  check_bool "timed out" true (!outcome = None)

(* --- UDP ------------------------------------------------------------------------ *)

let test_udp_delivery () =
  let w = make_world () in
  let got =
    run_to_completion w (fun () ->
        let ep = Udp.bind w.b.stack.Stack.udp ~port:53 in
        Udp.sendto w.a.stack.Stack.udp ~src_port:9999 ~dst:w.b.ip ~dst_port:53
          (View.of_string "query");
        let d = Udp.recv ep in
        (View.to_string d.Udp.data, d.Udp.src_port))
  in
  Alcotest.(check (pair string int)) "datagram" ("query", 9999) got

let test_udp_unbound_port_dropped () =
  let w = make_world () in
  run_to_completion w (fun () ->
      Udp.sendto w.a.stack.Stack.udp ~src_port:1 ~dst:w.b.ip ~dst_port:7777
        (View.of_string "nobody home");
      Sched.sleep w.sched (Time.ms 100));
  check "dropped" 1 (Udp.drops w.b.stack.Stack.udp)

let test_udp_fragmentation_round_trip () =
  (* 5000 bytes > 1500 MTU: forces IP fragmentation + reassembly. *)
  let w = make_world () in
  let payload = pattern 5000 in
  let got =
    run_to_completion w (fun () ->
        let ep = Udp.bind w.b.stack.Stack.udp ~port:2000 in
        Udp.sendto w.a.stack.Stack.udp ~src_port:2001 ~dst:w.b.ip ~dst_port:2000
          (View.of_string payload);
        let d = Udp.recv ep in
        View.to_string d.Udp.data)
  in
  check "length preserved" 5000 (String.length got);
  check_s "content preserved" payload got;
  check_bool "fragments were sent" true (Ipv4.fragments_out w.a.stack.Stack.ip >= 4);
  check "reassembled" 1 (Ipv4.reassembled w.b.stack.Stack.ip)

let test_ip_rejects_bad_checksum () =
  let w = make_world () in
  (* Send a raw IP frame with a corrupted header checksum. *)
  run_to_completion w (fun () ->
      let hdr = View.create 20 in
      View.set_uint8 hdr 0 0x45;
      View.set_uint16 hdr 2 20;
      View.set_uint16 hdr 10 0xBEEF (* wrong *);
      View.set_uint32 hdr 12 (Ip.to_int32 w.a.ip);
      View.set_uint32 hdr 16 (Ip.to_int32 w.b.ip);
      w.a.nic.Nic.send
        (Frame.make ~src:w.a.nic.Nic.mac ~dst:w.b.nic.Nic.mac ~ethertype:Frame.ethertype_ip
           (Mbuf.of_view hdr));
      Sched.sleep w.sched (Time.ms 50));
  check "dropped" 1 (Ipv4.drops w.b.stack.Stack.ip)

let test_ip_ignores_other_hosts () =
  let w = make_world () in
  (* A packet addressed to a third IP must be dropped (no gatewaying). *)
  run_to_completion w (fun () ->
      let hdr = View.create 20 in
      View.set_uint8 hdr 0 0x45;
      View.set_uint16 hdr 2 20;
      View.set_uint32 hdr 12 (Ip.to_int32 w.a.ip);
      View.set_uint32 hdr 16 (Ip.to_int32 (Ip.of_string "10.0.0.77"));
      View.set_uint16 hdr 10 (Checksum.of_view hdr);
      w.a.nic.Nic.send
        (Frame.make ~src:w.a.nic.Nic.mac ~dst:w.b.nic.Nic.mac ~ethertype:Frame.ethertype_ip
           (Mbuf.of_view hdr));
      Sched.sleep w.sched (Time.ms 50));
  check "dropped" 1 (Ipv4.drops w.b.stack.Stack.ip)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run ~and_exit:false "proto"
    [ ( "checksum",
        [ Alcotest.test_case "rfc1071 vector" `Quick test_checksum_known_vector;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
          Alcotest.test_case "self-validating" `Quick test_checksum_validates_self;
          qc prop_checksum_detects_single_flip;
          qc prop_checksum_segment_independent ] );
      ( "tcp_seq",
        [ Alcotest.test_case "wraparound" `Quick test_seq_wraparound;
          Alcotest.test_case "in_window" `Quick test_seq_in_window;
          qc prop_seq_diff_add ] );
      ( "tcp_wire",
        [ Alcotest.test_case "round trip" `Quick test_wire_round_trip;
          Alcotest.test_case "mss option" `Quick test_wire_mss_option;
          Alcotest.test_case "corruption" `Quick test_wire_detects_corruption;
          Alcotest.test_case "pseudo header" `Quick test_wire_wrong_pseudo_header;
          qc prop_wire_round_trip ] );
      ( "arp",
        [ Alcotest.test_case "resolves" `Quick test_arp_resolves_over_link;
          Alcotest.test_case "cache hit" `Quick test_arp_cache_hit_is_immediate;
          Alcotest.test_case "gives up" `Quick test_arp_gives_up_on_unknown_host ] );
      ( "icmp",
        [ Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "ping timeout" `Quick test_ping_unknown_host_times_out ] );
      ( "udp+ip",
        [ Alcotest.test_case "delivery" `Quick test_udp_delivery;
          Alcotest.test_case "unbound port" `Quick test_udp_unbound_port_dropped;
          Alcotest.test_case "fragmentation" `Quick test_udp_fragmentation_round_trip;
          Alcotest.test_case "bad ip checksum" `Quick test_ip_rejects_bad_checksum;
          Alcotest.test_case "no gatewaying" `Quick test_ip_ignores_other_hosts ] ) ]

(* --- ICMP destination unreachable (appended suite) ----------------------- *)

let test_unbound_udp_port_draws_unreachable () =
  let w = make_world () in
  run_to_completion w (fun () ->
      let ep = Udp.bind w.a.stack.Stack.udp ~port:4000 in
      Udp.sendto w.a.stack.Stack.udp ~src_port:4000 ~dst:w.b.ip ~dst_port:4321
        (View.of_string "anyone there?");
      Sched.sleep w.sched (Time.ms 200);
      check "peer sent an unreachable" 1 (Icmp.unreachables_out w.b.stack.Stack.icmp);
      check "we received it" 1 (Icmp.unreachables_in w.a.stack.Stack.icmp);
      check "udp error recorded" 1 (Udp.errors_received w.a.stack.Stack.udp);
      (match Udp.last_error ep with
      | Some about -> check_bool "names the dead destination" true (Ip.equal about w.b.ip)
      | None -> Alcotest.fail "endpoint saw no error");
      Udp.unbind w.a.stack.Stack.udp ep)

let test_bound_port_draws_no_unreachable () =
  let w = make_world () in
  run_to_completion w (fun () ->
      let server = Udp.bind w.b.stack.Stack.udp ~port:4321 in
      Udp.sendto w.a.stack.Stack.udp ~src_port:4000 ~dst:w.b.ip ~dst_port:4321
        (View.of_string "hello");
      ignore (Udp.recv server);
      Sched.sleep w.sched (Time.ms 100);
      check "no unreachable" 0 (Icmp.unreachables_out w.b.stack.Stack.icmp))

let () =
  Alcotest.run ~and_exit:false "proto-icmp-unreachable"
    [ ( "unreachable",
        [ Alcotest.test_case "unbound port" `Quick test_unbound_udp_port_draws_unreachable;
          Alcotest.test_case "bound port silent" `Quick test_bound_port_draws_no_unreachable ] ) ]
